// Package detrand provides the repository's deterministic random
// number generators. Everything simulated must replay bit for bit from
// a seed, so no package under internal/ may use math/rand (whose
// stream is not guaranteed stable across Go releases) or any other
// source of nondeterminism; cmd/simlint enforces that. The core here
// is the splitmix64 sequence already used by the retry-jitter and
// fault-injection code, packaged with the float/int/Zipf helpers the
// workload and load generators need.
package detrand

import "math"

// RNG is a deterministic pseudo-random generator: a splitmix64
// sequence, fully determined by its seed.
type RNG struct{ state uint64 }

// New returns a generator seeded with the given value.
func New(seed uint64) *RNG { return &RNG{state: seed ^ 0x9e3779b97f4a7c15} }

// Uint64 returns the next value of the sequence.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	x := r.state
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Mix64 is the stateless splitmix64 finalizer: a bijective hash of x.
// Code that needs one deterministic draw from ambient coordinates
// (virtual time, node id, attempt number) uses this instead of
// constructing a throwaway RNG; it is bit-identical to one Uint64 call
// on an RNG whose pre-increment state is x.
func Mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("detrand: Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Zipf samples integers k in [0, n) with P(k) proportional to
// 1/(1+k)^s — the same distribution math/rand's Zipf(s, 1, n-1)
// draws from — by inverse-CDF lookup over a precomputed cumulative
// table. The table costs O(n) memory, which is fine at the vocabulary
// and graph sizes the workloads use (tens of thousands).
type Zipf struct {
	r   *RNG
	cdf []float64
}

// NewZipf returns a Zipf sampler over [0, n) with exponent s.
// Exponents at or below 1 are clamped to 1.01 (the distribution needs
// s > 1 to have a finite tail at large n).
func NewZipf(seed uint64, s float64, n uint64) *Zipf {
	if s <= 1 {
		s = 1.01
	}
	if n < 1 {
		n = 1
	}
	cdf := make([]float64, n)
	sum := 0.0
	for k := uint64(0); k < n; k++ {
		sum += math.Pow(float64(1+k), -s)
		cdf[k] = sum
	}
	for k := range cdf {
		cdf[k] /= sum
	}
	return &Zipf{r: New(seed), cdf: cdf}
}

// Next draws one sample.
func (z *Zipf) Next() uint64 {
	u := z.r.Float64()
	// Binary search for the first bucket whose cumulative mass covers u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] <= u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return uint64(lo)
}
