package workload

import (
	"bytes"
	"sort"
	"testing"
)

func TestFacebookKVShapes(t *testing.T) {
	f := NewFacebookKV(1)
	const n = 20000
	var keys, vals []int64
	for i := 0; i < n; i++ {
		keys = append(keys, f.KeySize())
		vals = append(vals, f.ValueSize())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	// Keys are tens of bytes, tightly clustered.
	if med := keys[n/2]; med < 20 || med > 60 {
		t.Fatalf("median key size = %d, want ~30", med)
	}
	if keys[n-1] > 250 || keys[0] < 1 {
		t.Fatalf("key range [%d, %d] outside memcached bounds", keys[0], keys[n-1])
	}
	// Values are small at the median but heavy tailed.
	if med := vals[n/2]; med < 50 || med > 1000 {
		t.Fatalf("median value size = %d, want a few hundred bytes", med)
	}
	if p99 := vals[n*99/100]; p99 < 2*vals[n/2] {
		t.Fatalf("p99 value (%d) should be far above the median (%d)", p99, vals[n/2])
	}
	if vals[n-1] > 1<<20 {
		t.Fatalf("value cap violated: %d", vals[n-1])
	}
}

func TestFacebookKVDeterministic(t *testing.T) {
	a, b := NewFacebookKV(7), NewFacebookKV(7)
	for i := 0; i < 100; i++ {
		if a.ValueSize() != b.ValueSize() || a.InterArrival() != b.InterArrival() {
			t.Fatal("same seed must reproduce the same stream")
		}
	}
}

func TestInterArrivalPositive(t *testing.T) {
	f := NewFacebookKV(3)
	var total int64
	for i := 0; i < 10000; i++ {
		d := f.InterArrival()
		if d < 0 {
			t.Fatalf("negative gap %v", d)
		}
		total += int64(d)
	}
	mean := total / 10000
	// GP(16us, 0.155) has mean sigma/(1-k) ≈ 19us.
	if mean < 10000 || mean > 40000 {
		t.Fatalf("mean inter-arrival = %dns, want ~19us", mean)
	}
}

func TestPowerLawGraphInvariants(t *testing.T) {
	g := NewPowerLawGraph(1, 1000, 20000)
	if g.NumVertices != 1000 {
		t.Fatalf("vertices = %d", g.NumVertices)
	}
	if len(g.Edges) != 20000 {
		t.Fatalf("edges = %d, want 20000", len(g.Edges))
	}
	var total int
	maxDeg := 0
	for v := 0; v < g.NumVertices; v++ {
		d := g.OutDegree(v)
		if d < 0 {
			t.Fatalf("negative degree at %d", v)
		}
		total += d
		if d > maxDeg {
			maxDeg = d
		}
	}
	if total != len(g.Edges) {
		t.Fatalf("degree sum %d != edge count %d", total, len(g.Edges))
	}
	// Power law: the hottest vertex has far more than the mean degree.
	if maxDeg < 5*total/g.NumVertices {
		t.Fatalf("max degree %d not heavy tailed (mean %d)", maxDeg, total/g.NumVertices)
	}
	for _, e := range g.Edges {
		if e < 0 || int(e) >= g.NumVertices {
			t.Fatalf("edge target %d out of range", e)
		}
	}
}

func TestTransposePreservesEdges(t *testing.T) {
	g := NewPowerLawGraph(2, 200, 3000)
	tr := g.Transpose()
	if len(tr.Edges) != len(g.Edges) {
		t.Fatalf("transpose edge count %d != %d", len(tr.Edges), len(g.Edges))
	}
	// Every edge u->v in g appears as v->u in tr.
	type edge struct{ a, b int32 }
	fwd := make(map[edge]int)
	for u := 0; u < g.NumVertices; u++ {
		for _, v := range g.OutNeighbors(u) {
			fwd[edge{int32(u), v}]++
		}
	}
	for v := 0; v < tr.NumVertices; v++ {
		for _, u := range tr.OutNeighbors(v) {
			fwd[edge{u, int32(v)}]--
		}
	}
	for e, c := range fwd {
		if c != 0 {
			t.Fatalf("edge %v count mismatch %d", e, c)
		}
	}
}

func TestCorpus(t *testing.T) {
	c := NewCorpus(1, 500)
	if len(c.Words) != 500 {
		t.Fatalf("vocab = %d", len(c.Words))
	}
	text := c.Generate(10000)
	if len(text) < 10000 {
		t.Fatalf("text len = %d", len(text))
	}
	words := bytes.Fields(text)
	if len(words) < 1000 {
		t.Fatalf("too few words: %d", len(words))
	}
	// Zipf: the most frequent word dominates.
	freq := make(map[string]int)
	for _, w := range words {
		freq[string(w)]++
	}
	max := 0
	for _, c := range freq {
		if c > max {
			max = c
		}
	}
	if max < 5*len(words)/len(freq) {
		t.Fatalf("word frequency not skewed: max %d, words %d, distinct %d", max, len(words), len(freq))
	}
}
