// Package workload generates the synthetic inputs the evaluation
// needs: the Facebook ETC key-value distribution used by Figures 12
// and 13 (Atikoglu et al., SIGMETRICS'12 [3]), power-law graphs
// standing in for the Twitter graph of Figure 19, and a Zipf text
// corpus standing in for the Wikimedia dump of Figure 18.
//
// All generators are deterministic given a seed so experiments are
// reproducible.
package workload

import (
	"math"
	"time"

	"lite/internal/detrand"
)

// FacebookKV generates key sizes, value sizes, and inter-arrival times
// following the published fits for Facebook's ETC memcached pool:
// generalized-extreme-value key sizes, generalized-Pareto value sizes,
// and generalized-Pareto inter-arrival gaps.
type FacebookKV struct {
	rng *detrand.RNG
}

// NewFacebookKV returns a generator with the given seed.
func NewFacebookKV(seed int64) *FacebookKV {
	return &FacebookKV{rng: detrand.New(uint64(seed))}
}

// KeySize draws one key size in bytes (GEV(30.7, 8.2, 0.078),
// clamped to memcached's 1..250 range).
func (f *FacebookKV) KeySize() int64 {
	const mu, sigma, k = 30.7, 8.2, 0.078
	u := f.rng.Float64()
	// Inverse CDF of the generalized extreme value distribution.
	x := mu + sigma*(math.Pow(-math.Log(u), -k)-1)/k
	if x < 1 {
		x = 1
	}
	if x > 250 {
		x = 250
	}
	return int64(x)
}

// ValueSize draws one value size in bytes (generalized Pareto with
// sigma=214.5, k=0.348, capped at 1 MB as in memcached).
func (f *FacebookKV) ValueSize() int64 {
	const sigma, k = 214.5, 0.348
	u := f.rng.Float64()
	x := sigma * (math.Pow(1-u, -k) - 1) / k
	if x < 1 {
		x = 1
	}
	if x > 1<<20 {
		x = 1 << 20
	}
	return int64(x)
}

// InterArrival draws one request inter-arrival gap (generalized
// Pareto with sigma=16.0us, k=0.155).
func (f *FacebookKV) InterArrival() time.Duration {
	const sigmaUS, k = 16.0, 0.155
	u := f.rng.Float64()
	x := sigmaUS * (math.Pow(1-u, -k) - 1) / k
	return time.Duration(x * float64(time.Microsecond))
}

// Zipf draws integers in [0, n) with a Zipf distribution of exponent s.
type Zipf struct {
	z *detrand.Zipf
}

// NewZipf returns a Zipf sampler over [0, n).
func NewZipf(seed int64, s float64, n uint64) *Zipf {
	return &Zipf{z: detrand.NewZipf(uint64(seed), s, n)}
}

// Next draws one sample.
func (z *Zipf) Next() uint64 { return z.z.Next() }

// Graph is a directed power-law graph in compressed adjacency form.
type Graph struct {
	NumVertices int
	// Offsets[v]..Offsets[v+1] index Edges with v's out-neighbors.
	Offsets []int32
	Edges   []int32
}

// NewPowerLawGraph generates a graph with the given vertex and edge
// counts whose out-degrees follow a Zipf distribution — the shape of
// natural graphs like the Twitter follower graph the paper evaluates
// on (power-law graphs are exactly what PowerGraph's vertex cuts
// target).
func NewPowerLawGraph(seed int64, vertices, edges int) *Graph {
	rng := detrand.New(uint64(seed))
	zipfSrc := detrand.NewZipf(uint64(seed)+1, 1.8, uint64(vertices))
	// Draw out-degrees proportional to a Zipf sample per vertex, then
	// scale to the requested edge count.
	deg := make([]float64, vertices)
	var total float64
	for v := range deg {
		deg[v] = float64(zipfSrc.Next() + 1)
		total += deg[v]
	}
	offsets := make([]int32, vertices+1)
	counts := make([]int32, vertices)
	assigned := 0
	for v := range deg {
		c := int(deg[v] / total * float64(edges))
		counts[v] = int32(c)
		assigned += c
	}
	for assigned < edges {
		counts[rng.Intn(vertices)]++
		assigned++
	}
	for v := 0; v < vertices; v++ {
		offsets[v+1] = offsets[v] + counts[v]
	}
	es := make([]int32, offsets[vertices])
	for idx := range es {
		es[idx] = int32(rng.Intn(vertices))
	}
	return &Graph{NumVertices: vertices, Offsets: offsets, Edges: es}
}

// OutDegree returns vertex v's out-degree.
func (g *Graph) OutDegree(v int) int {
	return int(g.Offsets[v+1] - g.Offsets[v])
}

// OutNeighbors returns vertex v's out-neighbor slice (do not modify).
func (g *Graph) OutNeighbors(v int) []int32 {
	return g.Edges[g.Offsets[v]:g.Offsets[v+1]]
}

// Transpose returns the reversed graph (in-neighbors become
// out-neighbors), which PageRank's gather step needs.
func (g *Graph) Transpose() *Graph {
	counts := make([]int32, g.NumVertices)
	for _, d := range g.Edges {
		counts[d]++
	}
	offsets := make([]int32, g.NumVertices+1)
	for v := 0; v < g.NumVertices; v++ {
		offsets[v+1] = offsets[v] + counts[v]
	}
	es := make([]int32, len(g.Edges))
	cursor := make([]int32, g.NumVertices)
	copy(cursor, offsets[:g.NumVertices])
	for src := 0; src < g.NumVertices; src++ {
		for _, dst := range g.OutNeighbors(src) {
			es[cursor[dst]] = int32(src)
			cursor[dst]++
		}
	}
	return &Graph{NumVertices: g.NumVertices, Offsets: offsets, Edges: es}
}

// Corpus generates a synthetic text corpus with a Zipf word
// distribution, standing in for the Wikimedia dump of Figure 18.
type Corpus struct {
	// Words holds the vocabulary.
	Words []string
	zipf  *Zipf
}

// NewCorpus builds a vocabulary of the given size.
func NewCorpus(seed int64, vocab int) *Corpus {
	words := make([]string, vocab)
	letters := []byte("abcdefghijklmnopqrstuvwxyz")
	rng := detrand.New(uint64(seed))
	seen := make(map[string]bool, vocab)
	for i := range words {
		for {
			n := 3 + rng.Intn(8)
			b := make([]byte, n)
			for j := range b {
				b[j] = letters[rng.Intn(len(letters))]
			}
			w := string(b)
			if !seen[w] {
				seen[w] = true
				words[i] = w
				break
			}
		}
	}
	return &Corpus{Words: words, zipf: NewZipf(seed+1, 1.6, uint64(vocab))}
}

// Generate produces approximately n bytes of space-separated text.
func (c *Corpus) Generate(n int) []byte {
	out := make([]byte, 0, n+16)
	for len(out) < n {
		w := c.Words[c.zipf.Next()]
		out = append(out, w...)
		out = append(out, ' ')
	}
	return out
}
