package tenant

import (
	"errors"
	"testing"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func TestRegistryRegisterAuthLookup(t *testing.T) {
	r := NewRegistry()
	a, err := r.Register("acme", "pw-a", 4)
	if err != nil || a.ID != 1 || a.Weight != 4 {
		t.Fatalf("register: %+v, %v", a, err)
	}
	b, err := r.Register("bmart", "pw-b", 0) // weight floors to 1
	if err != nil || b.ID != 2 || b.Weight != 1 {
		t.Fatalf("register: %+v, %v", b, err)
	}
	if _, err := r.Register("acme", "other", 1); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate name error = %v", err)
	}
	if _, err := r.Register("", "x", 1); err == nil {
		t.Fatal("empty name must be rejected")
	}
	if got, err := r.Auth("acme", "pw-a"); err != nil || got != a {
		t.Fatalf("auth: %+v, %v", got, err)
	}
	if _, err := r.Auth("acme", "wrong"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad secret error = %v", err)
	}
	if _, err := r.Auth("ghost", "pw"); !errors.Is(err, ErrAuth) {
		t.Fatalf("unknown name error = %v", err)
	}
	if r.Lookup(1) != a || r.Lookup(0) != nil || r.Lookup(9) != nil {
		t.Fatal("lookup inconsistent")
	}
	if r.Len() != 2 {
		t.Fatalf("len = %d", r.Len())
	}
	if err := r.SetWeight(2, 7); err != nil || b.Weight != 7 {
		t.Fatalf("set weight: %v, %d", err, b.Weight)
	}
	if err := r.SetWeight(2, 0); err != nil || b.Weight != 1 {
		t.Fatalf("floored weight: %v, %d", err, b.Weight)
	}
	if err := r.SetWeight(99, 3); !errors.Is(err, ErrAuth) {
		t.Fatalf("unknown id error = %v", err)
	}
}

func TestRegistryAttachAndClient(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	a, _ := r.Register("acme", "pw", 4)
	r.Attach(dep)
	c, err := r.Client(dep, 0, "acme", "pw")
	if err != nil || c.Tenant() != a.ID || c.NodeID() != 0 {
		t.Fatalf("client: ten=%d node=%d err=%v", c.Tenant(), c.NodeID(), err)
	}
	if _, err := r.Client(dep, 0, "acme", "nope"); !errors.Is(err, ErrAuth) {
		t.Fatalf("bad secret client error = %v", err)
	}
}

func TestBuildSpecs(t *testing.T) {
	w, err := ParseWorkload(goodConfig)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	specs, err := Build(reg, w)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1000 || reg.Len() != 1000 {
		t.Fatalf("specs = %d, registered = %d", len(specs), reg.Len())
	}
	// Specs are ordered by ID; classes appear in config order.
	if specs[0].Class != "gold" || specs[0].Tenant.ID != 1 || specs[0].Tenant.Weight != 4 {
		t.Fatalf("first spec = %+v", specs[0])
	}
	if specs[999].Class != "bronze" || specs[999].Tenant.ID != 1000 {
		t.Fatalf("last spec = %+v", specs[999])
	}
	// Exactly one greedy tenant: the first bronze, at 5x its class rate.
	greedy := 0
	for _, s := range specs {
		if s.Greedy {
			greedy++
			if s.Class != "bronze" || s.RateWeight != 5 {
				t.Fatalf("greedy spec = %+v", s)
			}
		}
	}
	if greedy != 1 {
		t.Fatalf("greedy count = %d", greedy)
	}
	// Registered credentials authenticate.
	if _, err := reg.Auth("gold-0", Secret("gold-0")); err != nil {
		t.Fatal(err)
	}
	ws := RateWeights(specs)
	if len(ws) != 1000 || ws[0] != 4 || ws[999] != 1 {
		t.Fatalf("rate weights: %v %v %v", len(ws), ws[0], ws[999])
	}
	// Building again collides on names.
	if _, err := Build(reg, w); !errors.Is(err, ErrExists) {
		t.Fatalf("rebuild error = %v", err)
	}
	if _, err := Build(NewRegistry(), &Workload{Name: "x", UserCount: 1}); err == nil {
		t.Fatal("classless workload must be rejected")
	}
}

func TestPickOpDeterministicAndMixed(t *testing.T) {
	w := &Workload{
		Name: "x", UserCount: 1,
		Operations: []Op{{"put", 60}, {"lookup", 40}},
	}
	counts := map[string]int{}
	for k := 0; k < 1000; k++ {
		op := w.PickOp(42, 7, k)
		if op != w.PickOp(42, 7, k) {
			t.Fatal("PickOp not deterministic")
		}
		counts[op]++
	}
	if counts["put"] < 500 || counts["put"] > 700 {
		t.Fatalf("put share %d/1000, want ~600", counts["put"])
	}
	if counts["put"]+counts["lookup"] != 1000 {
		t.Fatalf("unknown ops: %v", counts)
	}
	// Different tenants see different streams.
	same := 0
	for k := 0; k < 100; k++ {
		if w.PickOp(42, 1, k) == w.PickOp(42, 2, k) {
			same++
		}
	}
	if same == 100 {
		t.Fatal("tenant streams identical")
	}
	if (&Workload{}).PickOp(1, 1, 1) != "" {
		t.Fatal("no-ops workload must return empty op")
	}
}

// smokeRPC drives one tenant RPC through a live deployment so the
// package's client path is exercised end to end.
func TestTenantClientRPCSmoke(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<30)
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	if _, err := r.Register("acme", "pw", 2); err != nil {
		t.Fatal(err)
	}
	r.Attach(dep)
	const fn = lite.FirstUserFunc
	if err := dep.Instance(1).ServeRPC(fn, 1, func(p *simtime.Proc, c *lite.Call) []byte {
		return append([]byte("t:"), byte(c.Tenant))
	}); err != nil {
		t.Fatal(err)
	}
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := r.Client(dep, 0, "acme", "pw")
		if err != nil {
			t.Error(err)
			return
		}
		out, err := c.RPC(p, 1, fn, []byte("hi"), 64)
		if err != nil || len(out) != 3 || out[2] != 1 {
			t.Errorf("rpc = %q, %v", out, err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}
