package tenant

import (
	"strings"
	"testing"
)

const goodConfig = `
# Multi-tenant isolation workload (orion-bench style).
workload:
  name: tenants
  # Each user runs its op mix in parallel.
  user-count: 1_000
  operations:
    - op: put
      weight: 60
    - op: lookup
      weight: 40
  classes:
    - name: gold
      count: 100
      weight: 4
    - name: silver
      count: 300
      weight: 2
    - name: bronze
      count: 600
      weight: 1
  greedy:
    class: bronze
    factor: 5
`

func TestParseWorkload(t *testing.T) {
	w, err := ParseWorkload(goodConfig)
	if err != nil {
		t.Fatal(err)
	}
	if w.Name != "tenants" || w.UserCount != 1000 {
		t.Fatalf("header = %q/%d", w.Name, w.UserCount)
	}
	if len(w.Operations) != 2 || w.Operations[0] != (Op{"put", 60}) || w.Operations[1] != (Op{"lookup", 40}) {
		t.Fatalf("operations = %+v", w.Operations)
	}
	if len(w.Classes) != 3 || w.Classes[1] != (Class{"silver", 300, 2}) {
		t.Fatalf("classes = %+v", w.Classes)
	}
	if w.Greedy == nil || w.Greedy.Class != "bronze" || w.Greedy.Factor != 5 {
		t.Fatalf("greedy = %+v", w.Greedy)
	}
}

func TestParseWorkloadErrors(t *testing.T) {
	cases := []struct {
		name string
		text string
		want string
	}{
		{"empty", "", "workload block"},
		{"tab", "workload:\n\tname: x", "tabs"},
		{"no-name", "workload:\n  user-count: 5", "name"},
		{"no-count", "workload:\n  name: x", "user-count"},
		{"bad-count", "workload:\n  name: x\n  user-count: many", "user-count"},
		{"zero-count", "workload:\n  name: x\n  user-count: 0", ">= 1"},
		{"dup-key", "workload:\n  name: x\n  name: y\n  user-count: 1", "duplicate key"},
		{"bad-kv", "workload:\n  name: x\n  user-count: 1\n  nonsense", "key: value"},
		{"class-sum", "workload:\n  name: x\n  user-count: 5\n  classes:\n    - name: a\n      count: 3\n      weight: 1", "sum to 3"},
		{"dup-class", "workload:\n  name: x\n  user-count: 2\n  classes:\n    - name: a\n      count: 1\n      weight: 1\n    - name: a\n      count: 1\n      weight: 1", "duplicate class"},
		{"zero-op-weights", "workload:\n  name: x\n  user-count: 1\n  operations:\n    - op: a\n      weight: 0", "sum to zero"},
		{"neg-op-weight", "workload:\n  name: x\n  user-count: 1\n  operations:\n    - op: a\n      weight: -2", "negative weight"},
		{"greedy-ghost-class", "workload:\n  name: x\n  user-count: 1\n  classes:\n    - name: a\n      count: 1\n      weight: 1\n  greedy:\n    class: b\n    factor: 5", "greedy class"},
		{"greedy-factor", "workload:\n  name: x\n  user-count: 1\n  classes:\n    - name: a\n      count: 1\n      weight: 1\n  greedy:\n    class: a\n    factor: 0", "factor"},
		{"empty-list-item", "workload:\n  name: x\n  user-count: 1\n  operations:\n    -", "empty list item"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseWorkload(tc.text)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestParseYAMLShapes(t *testing.T) {
	// Scalar list items and dash-only items with block maps.
	root, err := parseYAML("xs:\n  - alpha\n  - beta\nm:\n  -\n    k: v\n")
	if err != nil {
		t.Fatal(err)
	}
	top := root.(map[string]any)
	xs := top["xs"].([]any)
	if len(xs) != 2 || xs[0] != "alpha" || xs[1] != "beta" {
		t.Fatalf("xs = %+v", xs)
	}
	m := top["m"].([]any)
	if mm := m[0].(map[string]any); mm["k"] != "v" {
		t.Fatalf("m = %+v", m)
	}
	// Empty input parses to an empty map.
	if root, err := parseYAML("# nothing\n\n"); err != nil || len(root.(map[string]any)) != 0 {
		t.Fatalf("empty parse: %v %v", root, err)
	}
}
