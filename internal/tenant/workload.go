package tenant

import (
	"fmt"

	"lite/internal/detrand"
)

// Workload driving shared by the litebench tenants experiment and the
// package's isolation tests: expand a parsed config into registered
// tenants with per-tenant offered-load weights, and pick operations
// deterministically per (seed, tenant, call).

// Spec is one simulated tenant of a workload run.
type Spec struct {
	Tenant *Tenant
	Class  string
	Greedy bool
	// RateWeight is the tenant's share of the aggregate offered load:
	// its class QoS weight (paying tenants offer load in proportion to
	// what they bought), times the greedy factor for the misbehaving
	// tenant.
	RateWeight float64
}

// Build registers one tenant per configured user in the registry and
// returns their specs in ID order. Tenant names are "<class>-<k>";
// secrets are derived from the name (this is a simulation — the
// credential machinery models the control flow, not cryptography).
// The first tenant of the greedy class, if configured, is marked
// greedy with Factor times its class rate.
func Build(reg *Registry, w *Workload) ([]Spec, error) {
	if len(w.Classes) == 0 {
		return nil, fmt.Errorf("tenant: workload %q has no classes", w.Name)
	}
	specs := make([]Spec, 0, w.UserCount)
	for _, cl := range w.Classes {
		for k := 0; k < cl.Count; k++ {
			name := fmt.Sprintf("%s-%d", cl.Name, k)
			t, err := reg.Register(name, Secret(name), cl.Weight)
			if err != nil {
				return nil, err
			}
			s := Spec{Tenant: t, Class: cl.Name, RateWeight: float64(cl.Weight)}
			if w.Greedy != nil && cl.Name == w.Greedy.Class && k == 0 {
				s.Greedy = true
				s.RateWeight *= float64(w.Greedy.Factor)
			}
			specs = append(specs, s)
		}
	}
	return specs, nil
}

// Secret derives a tenant's secret from its name, so tests and
// experiments can authenticate without a side table.
func Secret(name string) string { return "s3cret:" + name }

// RateWeights returns the specs' offered-load weights, aligned by
// index — the shape load.SplitPoissonWeighted consumes.
func RateWeights(specs []Spec) []float64 {
	ws := make([]float64, len(specs))
	for i, s := range specs {
		ws[i] = s.RateWeight
	}
	return ws
}

// PickOp deterministically chooses an operation for call k of the
// given tenant by hashing (seed, tenant, k) into the weighted mix.
// Every run with the same inputs picks the same op.
func (w *Workload) PickOp(seed uint64, ten uint16, k int) string {
	if len(w.Operations) == 0 {
		return ""
	}
	sum := 0
	for _, o := range w.Operations {
		sum += o.Weight
	}
	h := detrand.Mix64(seed ^ detrand.Mix64(uint64(ten)<<32|uint64(uint32(k))))
	n := int(h % uint64(sum))
	for _, o := range w.Operations {
		if n < o.Weight {
			return o.Name
		}
		n -= o.Weight
	}
	return w.Operations[len(w.Operations)-1].Name
}
