package tenant

import (
	"errors"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/load"
	"lite/internal/params"
	"lite/internal/simtime"
)

// runIsolation drives four tenants (victim w2, two background w1, one
// potentially-greedy w1) against a shared fair-admission RPC server at
// ~2x capacity and returns the victim's result plus the greedy
// tenant's shed count. greedyFactor 1 is the baseline; 5 is the
// misbehaving run. Both runs keep the victim's and background
// tenants' absolute offered rates identical, so any victim movement
// is the greedy tenant's doing.
func runIsolation(t *testing.T, greedyFactor float64) (victim *load.Result, greedySheds int64) {
	res := runIsolationAll(t, greedyFactor)
	return res[0], res[3].Shed
}

func runIsolationAll(t *testing.T, greedyFactor float64) []*load.Result {
	t.Helper()
	// The handler is deliberately slow relative to per-message wire and
	// ring costs so the worker pool — the resource admission arbitrates
	// — is the bottleneck. With fast handlers the greedy tenant's extra
	// messages congest the shared recv ring *before* the admission
	// check can bounce them, which is a NIC-level head-of-line problem
	// admission control cannot fix.
	const (
		tenants = 4
		srvNode = 2
		service = 10 * time.Microsecond
		workers = 2
		baseU   = 0.08 // offered rate per weight unit, calls/us
	)
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 3, 1<<30)
	opts := lite.DefaultOptions()
	opts.RPCTimeout = 200 * time.Microsecond
	opts.RetryBackoff = 20 * time.Microsecond
	// Keep the high-water mark tight: the admission budget bounds the
	// worst-case queue behind the workers, and with both runs saturating
	// it the victim's tail is set by the budget, not by how hard the
	// greedy tenant pushes.
	opts.AdmissionHighWater = 16
	opts.FairAdmission = true
	dep, err := lite.Start(cls, opts)
	if err != nil {
		t.Fatal(err)
	}
	reg := NewRegistry()
	weights := []int{2, 1, 1, 1} // victim, bg, bg, greedy
	names := []string{"victim", "bg-0", "bg-1", "greedy"}
	clients := make([]*lite.Client, tenants)
	issueNodes := []int{0, 1, 0, 1}
	for i := range names {
		if _, err := reg.Register(names[i], Secret(names[i]), weights[i]); err != nil {
			t.Fatal(err)
		}
	}
	reg.Attach(dep)
	for i := range names {
		c, err := reg.Client(dep, issueNodes[i], names[i], Secret(names[i]))
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = c
	}
	const fn = lite.FirstUserFunc
	if err := dep.Instance(srvNode).ServeRPC(fn, workers, func(p *simtime.Proc, c *lite.Call) []byte {
		p.Work(service)
		return c.Input[:8]
	}); err != nil {
		t.Fatal(err)
	}
	// Warm bindings and prime the service-time EWMA before the
	// schedule opens.
	for i := range clients {
		c := clients[i]
		node := issueNodes[i]
		cls.GoOn(node, "warmup", func(p *simtime.Proc) {
			if _, err := c.RPCRetry(p, srvNode, fn, make([]byte, 16), 64); err != nil {
				t.Errorf("warmup: %v", err)
			}
		})
	}
	// Offered load per tenant is its QoS weight x baseU, with the
	// greedy tenant scaled by its misbehavior factor. Aggregate rate
	// and request count scale together so the run covers the same
	// virtual-time window in both configurations.
	rw := []float64{2, 1, 1, greedyFactor}
	sumW := 0.0
	for _, w := range rw {
		sumW += w
	}
	rate := baseU * sumW
	reqs := int(2000 * rate) // ~2000us of schedule
	scheds := load.SplitPoissonWeighted(42, rate, reqs, simtime.Time(50*time.Microsecond), rw)
	res := load.RunMulti(cls, issueNodes, scheds, func(p *simtime.Proc, issuer, k int) load.Status {
		_, err := clients[issuer].RPC(p, srvNode, fn, make([]byte, 16), 64)
		switch {
		case err == nil:
			return load.StatusOK
		case errors.Is(err, lite.ErrOverloaded):
			return load.StatusShed
		case errors.Is(err, lite.ErrTimeout):
			return load.StatusTimeout
		default:
			return load.StatusError
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestGreedyTenantCannotMoveVictimTail is the isolation property the
// weighted-credit admission regime exists for: a tenant overdriving
// its class by 5x is clamped to its weight (its excess arrivals bounce
// off an empty credit bank without consuming budget), so a
// well-behaved tenant's p99 moves by at most 20%.
func TestGreedyTenantCannotMoveVictimTail(t *testing.T) {
	base, baseSheds := runIsolation(t, 1)
	loaded, greedySheds := runIsolation(t, 5)
	if base.OK == 0 || loaded.OK == 0 {
		t.Fatalf("no victim goodput: base OK=%d loaded OK=%d", base.OK, loaded.OK)
	}
	bp, lp := base.P99(), loaded.P99()
	if lp > bp+bp/5 {
		t.Fatalf("victim p99 moved %v -> %v (> +20%%) under a 5x greedy tenant", bp, lp)
	}
	// The clamp must be visible: the greedy run sheds far more of the
	// greedy tenant's traffic than the baseline did.
	if greedySheds <= baseSheds {
		t.Fatalf("greedy sheds %d <= baseline %d; admission never clamped it", greedySheds, baseSheds)
	}
}
