// Package tenant turns a LITE deployment into LITE-as-a-service: a
// registry of named tenants with credentials and QoS weights, scoped
// clients whose LMRs and RPCs live in per-tenant namespaces, and a
// declarative workload config for driving isolation experiments at the
// ~1000-user scale.
//
// The package is deliberately thin over internal/lite: a tenant ID is
// lite's uint16 namespace tag, a weight is lite's weighted-credit
// admission share, and a tenant client is lite's TenantClient. What
// tenant adds is the control plane — who exists, what they may claim
// to be (Auth), and how much service they bought (Weight) — plus the
// workload machinery the multi-tenant experiments share.
package tenant

import (
	"errors"
	"fmt"

	"lite/internal/lite"
)

// Tenant IDs are uint16 with 0 reserved for the kernel/untenanted
// class, so a registry can hold at most 65535 tenants.
const maxTenants = 1<<16 - 1

// Errors returned by the registry.
var (
	ErrExists = errors.New("tenant: name already registered")
	ErrAuth   = errors.New("tenant: unknown tenant or bad secret")
	ErrFull   = errors.New("tenant: registry full")
)

// Tenant is one registered tenant: a stable ID (the namespace tag
// carried in ring headers and stamped on handles), a human name, and
// the QoS weight its service class bought.
type Tenant struct {
	ID     uint16
	Name   string
	Weight int

	secret string
}

// Registry is the tenant control plane. IDs are assigned sequentially
// from 1 in registration order, so a fixed registration sequence gives
// identical IDs on every run — determinism the simulation's replay
// guarantee depends on.
type Registry struct {
	byName map[string]*Tenant
	byID   []*Tenant // index = ID-1
}

// NewRegistry returns an empty tenant registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*Tenant)}
}

// Register creates a tenant with the given credentials and QoS weight
// (floored at 1) and returns it. Names must be unique.
func (r *Registry) Register(name, secret string, weight int) (*Tenant, error) {
	if name == "" {
		return nil, fmt.Errorf("tenant: empty name")
	}
	if _, ok := r.byName[name]; ok {
		return nil, ErrExists
	}
	if len(r.byID) >= maxTenants {
		return nil, ErrFull
	}
	if weight < 1 {
		weight = 1
	}
	t := &Tenant{ID: uint16(len(r.byID) + 1), Name: name, Weight: weight, secret: secret}
	r.byName[name] = t
	r.byID = append(r.byID, t)
	return t, nil
}

// Auth validates a tenant's credentials and returns its identity.
// Unknown names and wrong secrets return the same error, so a caller
// cannot probe which names exist.
func (r *Registry) Auth(name, secret string) (*Tenant, error) {
	t := r.byName[name]
	if t == nil || t.secret != secret {
		return nil, ErrAuth
	}
	return t, nil
}

// Lookup returns the tenant with the given ID, nil if unregistered.
func (r *Registry) Lookup(id uint16) *Tenant {
	if id < 1 || int(id) > len(r.byID) {
		return nil
	}
	return r.byID[id-1]
}

// Len returns the number of registered tenants.
func (r *Registry) Len() int { return len(r.byID) }

// SetWeight updates a tenant's QoS weight (floored at 1). The change
// reaches deployments on the next Attach.
func (r *Registry) SetWeight(id uint16, weight int) error {
	t := r.Lookup(id)
	if t == nil {
		return ErrAuth
	}
	if weight < 1 {
		weight = 1
	}
	t.Weight = weight
	return nil
}

// Attach pushes every registered tenant's QoS weight into the
// deployment's admission control, in ID order (deterministic).
func (r *Registry) Attach(dep *lite.Deployment) {
	for _, t := range r.byID {
		dep.SetTenantWeight(t.ID, t.Weight)
	}
}

// Client authenticates the named tenant and returns a client on the
// given node scoped to its namespace.
func (r *Registry) Client(dep *lite.Deployment, node int, name, secret string) (*lite.Client, error) {
	t, err := r.Auth(name, secret)
	if err != nil {
		return nil, err
	}
	return dep.Instance(node).TenantClient(t.ID), nil
}
