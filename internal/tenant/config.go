package tenant

import (
	"fmt"
	"strconv"
	"strings"
)

// Declarative workload configs, orion-bench style: a YAML subset with
// nested blocks, lists of maps, comments, and readable integers like
// 1_000. Only what the multi-tenant experiments need is implemented —
// no anchors, no flow style, no multi-line scalars — so the parser
// stays a page of code with no dependency.

// Op is one operation of the workload mix; weights are relative
// probabilities.
type Op struct {
	Name   string
	Weight int
}

// Class is one tenant service class: Count tenants sharing one QoS
// weight.
type Class struct {
	Name   string
	Count  int
	Weight int
}

// Greedy marks one tenant of a class as misbehaving: it offers Factor
// times its class's per-tenant load.
type Greedy struct {
	Class  string
	Factor int
}

// Workload is a parsed multi-tenant workload description.
type Workload struct {
	Name       string
	UserCount  int
	Operations []Op
	Classes    []Class
	Greedy     *Greedy
}

// ParseWorkload parses the YAML-subset workload config. The expected
// shape (see testdata and EXPERIMENTS.md):
//
//	workload:
//	  name: tenants
//	  user-count: 1_000
//	  operations:
//	    - op: put
//	      weight: 60
//	  classes:
//	    - name: gold
//	      count: 100
//	      weight: 4
//	  greedy:
//	    class: bronze
//	    factor: 5
func ParseWorkload(text string) (*Workload, error) {
	root, err := parseYAML(text)
	if err != nil {
		return nil, err
	}
	top, ok := root.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("tenant: config root must be a map")
	}
	wl, ok := top["workload"].(map[string]any)
	if !ok {
		return nil, fmt.Errorf("tenant: config needs a workload block")
	}
	w := &Workload{}
	if w.Name, err = wantString(wl, "name"); err != nil {
		return nil, err
	}
	if w.UserCount, err = wantInt(wl, "user-count"); err != nil {
		return nil, err
	}
	if ops, ok := wl["operations"].([]any); ok {
		for _, it := range ops {
			m, ok := it.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("tenant: operations entries must be maps")
			}
			var o Op
			if o.Name, err = wantString(m, "op"); err != nil {
				return nil, err
			}
			if o.Weight, err = wantInt(m, "weight"); err != nil {
				return nil, err
			}
			w.Operations = append(w.Operations, o)
		}
	}
	if cls, ok := wl["classes"].([]any); ok {
		for _, it := range cls {
			m, ok := it.(map[string]any)
			if !ok {
				return nil, fmt.Errorf("tenant: classes entries must be maps")
			}
			var c Class
			if c.Name, err = wantString(m, "name"); err != nil {
				return nil, err
			}
			if c.Count, err = wantInt(m, "count"); err != nil {
				return nil, err
			}
			if c.Weight, err = wantInt(m, "weight"); err != nil {
				return nil, err
			}
			w.Classes = append(w.Classes, c)
		}
	}
	if g, ok := wl["greedy"].(map[string]any); ok {
		gr := &Greedy{}
		if gr.Class, err = wantString(g, "class"); err != nil {
			return nil, err
		}
		if gr.Factor, err = wantInt(g, "factor"); err != nil {
			return nil, err
		}
		w.Greedy = gr
	}
	return w, w.validate()
}

func (w *Workload) validate() error {
	if w.UserCount < 1 {
		return fmt.Errorf("tenant: user-count must be >= 1")
	}
	opSum := 0
	for _, o := range w.Operations {
		if o.Weight < 0 {
			return fmt.Errorf("tenant: operation %q has negative weight", o.Name)
		}
		opSum += o.Weight
	}
	if len(w.Operations) > 0 && opSum == 0 {
		return fmt.Errorf("tenant: operation weights sum to zero")
	}
	if len(w.Classes) > 0 {
		sum := 0
		seen := map[string]bool{}
		for _, c := range w.Classes {
			if c.Count < 0 || c.Weight < 1 {
				return fmt.Errorf("tenant: class %q needs count >= 0 and weight >= 1", c.Name)
			}
			if seen[c.Name] {
				return fmt.Errorf("tenant: duplicate class %q", c.Name)
			}
			seen[c.Name] = true
			sum += c.Count
		}
		if sum != w.UserCount {
			return fmt.Errorf("tenant: class counts sum to %d, user-count is %d", sum, w.UserCount)
		}
	}
	if w.Greedy != nil {
		found := false
		for _, c := range w.Classes {
			if c.Name == w.Greedy.Class {
				found = c.Count > 0
			}
		}
		if !found {
			return fmt.Errorf("tenant: greedy class %q not a populated class", w.Greedy.Class)
		}
		if w.Greedy.Factor < 1 {
			return fmt.Errorf("tenant: greedy factor must be >= 1")
		}
	}
	return nil
}

func wantString(m map[string]any, key string) (string, error) {
	s, ok := m[key].(string)
	if !ok || s == "" {
		return "", fmt.Errorf("tenant: missing or non-scalar %q", key)
	}
	return s, nil
}

func wantInt(m map[string]any, key string) (int, error) {
	s, ok := m[key].(string)
	if !ok {
		return 0, fmt.Errorf("tenant: missing or non-scalar %q", key)
	}
	n, err := strconv.Atoi(strings.ReplaceAll(s, "_", ""))
	if err != nil {
		return 0, fmt.Errorf("tenant: %q: %v", key, err)
	}
	return n, nil
}

// ---- YAML-subset parser ----

// yline is one meaningful config line: indentation in spaces plus
// content with comments stripped.
type yline struct {
	indent int
	text   string
	lineno int
}

// parseYAML parses the subset into map[string]any / []any / string.
func parseYAML(text string) (any, error) {
	var lines []yline
	for no, raw := range strings.Split(text, "\n") {
		if strings.Contains(raw, "\t") {
			return nil, fmt.Errorf("tenant: config line %d: tabs are not allowed", no+1)
		}
		// Strip comments: a # at the start of the content or preceded
		// by a space. (No quoted strings in the subset.)
		if i := strings.Index(raw, "#"); i >= 0 && (i == 0 || raw[i-1] == ' ' || strings.TrimSpace(raw[:i]) == "") {
			raw = raw[:i]
		}
		content := strings.TrimRight(raw, " ")
		trimmed := strings.TrimLeft(content, " ")
		if trimmed == "" {
			continue
		}
		lines = append(lines, yline{indent: len(content) - len(trimmed), text: trimmed, lineno: no + 1})
	}
	if len(lines) == 0 {
		return map[string]any{}, nil
	}
	node, rest, err := parseBlock(lines, lines[0].indent)
	if err != nil {
		return nil, err
	}
	if len(rest) > 0 {
		return nil, fmt.Errorf("tenant: config line %d: unexpected outdent", rest[0].lineno)
	}
	return node, nil
}

// parseBlock parses consecutive lines at exactly the given indent into
// one node (a map or a list), returning the unconsumed suffix.
func parseBlock(lines []yline, indent int) (any, []yline, error) {
	if strings.HasPrefix(lines[0].text, "- ") || lines[0].text == "-" {
		return parseList(lines, indent)
	}
	return parseMap(lines, indent)
}

func parseMap(lines []yline, indent int) (any, []yline, error) {
	m := make(map[string]any)
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent < indent {
			break
		}
		if ln.indent > indent {
			return nil, nil, fmt.Errorf("tenant: config line %d: unexpected indent", ln.lineno)
		}
		key, val, ok := strings.Cut(ln.text, ":")
		if !ok || key == "" || strings.HasPrefix(ln.text, "- ") {
			return nil, nil, fmt.Errorf("tenant: config line %d: expected \"key: value\"", ln.lineno)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		if _, dup := m[key]; dup {
			return nil, nil, fmt.Errorf("tenant: config line %d: duplicate key %q", ln.lineno, key)
		}
		lines = lines[1:]
		if val != "" {
			m[key] = val
			continue
		}
		// A block value: everything more deeply indented below.
		if len(lines) == 0 || lines[0].indent <= indent {
			m[key] = "" // empty value
			continue
		}
		var child any
		var err error
		child, lines, err = parseBlock(lines, lines[0].indent)
		if err != nil {
			return nil, nil, err
		}
		m[key] = child
	}
	return m, lines, nil
}

func parseList(lines []yline, indent int) (any, []yline, error) {
	var list []any
	for len(lines) > 0 {
		ln := lines[0]
		if ln.indent != indent || (ln.text != "-" && !strings.HasPrefix(ln.text, "- ")) {
			if ln.indent > indent {
				return nil, nil, fmt.Errorf("tenant: config line %d: unexpected indent", ln.lineno)
			}
			break
		}
		rest := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		lines = lines[1:]
		if rest == "" {
			// "-" alone: the item is the indented block below.
			if len(lines) == 0 || lines[0].indent <= indent {
				return nil, nil, fmt.Errorf("tenant: config line %d: empty list item", ln.lineno)
			}
			var child any
			var err error
			child, lines, err = parseBlock(lines, lines[0].indent)
			if err != nil {
				return nil, nil, err
			}
			list = append(list, child)
			continue
		}
		if !strings.Contains(rest, ":") {
			// Scalar item.
			list = append(list, rest)
			continue
		}
		// "- key: value" starts an inline map item; continuation keys
		// sit on following lines, indented past the dash.
		item := []yline{{indent: indent + 2, text: rest, lineno: ln.lineno}}
		for len(lines) > 0 && lines[0].indent > indent {
			item = append(item, lines[0])
			lines = lines[1:]
		}
		child, leftover, err := parseMap(item, indent+2)
		if err != nil {
			return nil, nil, err
		}
		if len(leftover) > 0 {
			return nil, nil, fmt.Errorf("tenant: config line %d: bad list item layout", leftover[0].lineno)
		}
		list = append(list, child)
	}
	return list, lines, nil
}
