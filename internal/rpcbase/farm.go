package rpcbase

import (
	"lite/internal/cluster"
	"lite/internal/hostmem"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/verbs"
)

// farmRingSize is each direction's message ring.
const farmRingSize = 1 << 20

// FaRMPair is a FaRM-style message channel between two nodes: each
// direction is a ring buffer in the receiver's memory, written with
// one-sided RDMA writes and busy-polled by the receiver (the paper
// emulates an RPC on FaRM as two such writes).
type FaRMPair struct {
	a, b *farmEnd
}

type farmEnd struct {
	cls  *cluster.Cluster
	node int
	ctx  *verbs.Context
	qp   *rnic.QP

	// Inbound ring (in this node's memory).
	inPA   hostmem.PAddr
	inCond simtime.Cond
	inHead int64

	// Outbound ring (in the peer's memory).
	outKey  uint32
	outPA   hostmem.PAddr
	outTail int64
	peer    *farmEnd
	seq     uint64
	lastSeq uint64
}

// NewFaRMPair builds a bidirectional FaRM message channel between two
// nodes.
func NewFaRMPair(cls *cluster.Cluster, nodeA, nodeB int) (*FaRMPair, error) {
	mk := func(node int) (*farmEnd, *rnic.MR, error) {
		nd := cls.Nodes[node]
		e := &farmEnd{cls: cls, node: node, ctx: verbs.Open(nd.NIC, nd.KernelAS)}
		pa, err := nd.Mem.AllocContiguous(farmRingSize)
		if err != nil {
			return nil, nil, err
		}
		mr, err := nd.NIC.RegisterPhysMR(nd.KernelAS, pa, farmRingSize, rnic.PermRead|rnic.PermWrite)
		if err != nil {
			return nil, nil, err
		}
		e.inPA = pa
		env := cls.Env
		nd.Mem.AddWatch(pa, farmRingSize, func() { e.inCond.Broadcast(env) })
		return e, mr, nil
	}
	ea, mra, err := mk(nodeA)
	if err != nil {
		return nil, err
	}
	eb, mrb, err := mk(nodeB)
	if err != nil {
		return nil, err
	}
	ea.outKey, ea.outPA = mrb.Key(), eb.inPA
	eb.outKey, eb.outPA = mra.Key(), ea.inPA
	ea.peer, eb.peer = eb, ea
	qa := ea.ctx.CreateQP(rnic.RC, ea.ctx.CreateCQ(), ea.ctx.CreateCQ())
	qb := eb.ctx.CreateQP(rnic.RC, eb.ctx.CreateCQ(), eb.ctx.CreateCQ())
	qa.Connect(nodeB, qb.QPN())
	qb.Connect(nodeA, qa.QPN())
	ea.qp, eb.qp = qa, qb
	return &FaRMPair{a: ea, b: eb}, nil
}

// End returns the endpoint at the given node.
func (f *FaRMPair) End(node int) *FaRMEnd {
	if f.a.node == node {
		return (*FaRMEnd)(f.a)
	}
	return (*FaRMEnd)(f.b)
}

// FaRMEnd is one endpoint of a FaRM message channel.
type FaRMEnd farmEnd

// Send writes one message into the peer's ring with a single
// one-sided RDMA write (unsignaled; delivery is detected by the
// receiver polling memory).
func (e *FaRMEnd) Send(p *simtime.Proc, payload []byte) error {
	en := (*farmEnd)(e)
	en.seq++
	msg := make([]byte, frameHdr+len(payload))
	putFrame(msg, en.seq, payload)
	// One slot per message, fixed stride for simplicity of polling.
	slot := en.outTail % (farmRingSize / herdSlotSize)
	en.outTail++
	return en.ctx.PostSend(p, en.qp, rnic.WR{
		Kind: rnic.OpWrite, Signaled: false,
		LocalBuf: msg, Len: int64(len(msg)),
		RemoteKey: en.outKey, RemoteOff: slot * herdSlotSize,
	})
}

// Recv busy-polls the inbound ring for the next message (CPU charged,
// as FaRM receivers spin).
func (e *FaRMEnd) Recv(p *simtime.Proc) ([]byte, error) {
	en := (*farmEnd)(e)
	buf := make([]byte, herdSlotSize)
	slot := en.inHead % (farmRingSize / herdSlotSize)
	want := en.lastSeq + 1
	for {
		if err := en.cls.Nodes[en.node].Mem.Read(en.inPA+hostmem.PAddr(slot*herdSlotSize), buf); err != nil {
			return nil, err
		}
		seq, payload := parseFrame(buf)
		if seq >= want {
			en.lastSeq = seq
			en.inHead++
			return append([]byte(nil), payload...), nil
		}
		t0 := p.Now()
		en.inCond.Wait(p)
		p.CPUAccount().Charge(p.Now() - t0)
	}
}
