package rpcbase

import "sort"

// This file models the memory accounting of send/recv-based RPC for
// the paper's Figure 12. With two-sided sends, receivers must pre-post
// buffers large enough for the biggest possible message; even with
// several receive queues of different buffer sizes (the optimization
// of Shipman et al. [72] the paper grants the baseline), every message
// consumes a buffer at least as large as itself, wasting the
// difference. LITE's write-imm rings consume only the bytes written
// (rounded to the ring's 64-byte slot alignment) plus a fixed header.

// RQClasses picks k receive-buffer size classes for the given message
// size distribution, placed at evenly spaced quantiles with the top
// class at the maximum (a message must always fit somewhere).
func RQClasses(sizes []int64, k int) []int64 {
	if len(sizes) == 0 || k < 1 {
		return nil
	}
	sorted := append([]int64(nil), sizes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	classes := make([]int64, 0, k)
	for c := 1; c <= k; c++ {
		idx := len(sorted)*c/k - 1
		if idx < 0 {
			idx = 0
		}
		v := sorted[idx]
		if len(classes) > 0 && v <= classes[len(classes)-1] {
			continue
		}
		classes = append(classes, v)
	}
	if classes[len(classes)-1] < sorted[len(sorted)-1] {
		classes = append(classes, sorted[len(sorted)-1])
	}
	return classes
}

// SendRQUtilization returns payload bytes divided by consumed receive
// buffer bytes when each message is steered to the most space-efficient
// receive queue (the smallest class that fits it).
func SendRQUtilization(sizes []int64, classes []int64) float64 {
	if len(sizes) == 0 || len(classes) == 0 {
		return 0
	}
	sorted := append([]int64(nil), classes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var payload, consumed int64
	for _, s := range sizes {
		payload += s
		// Smallest class >= s; oversized messages take ceil(n/max)
		// buffers of the largest class.
		idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] >= s })
		if idx < len(sorted) {
			consumed += sorted[idx]
			continue
		}
		max := sorted[len(sorted)-1]
		bufs := (s + max - 1) / max
		consumed += bufs * max
	}
	return float64(payload) / float64(consumed)
}

// LITERingUtilization returns payload bytes divided by ring bytes
// consumed by LITE's write-imm RPC: a fixed header per message plus
// 8-byte slot alignment.
func LITERingUtilization(sizes []int64) float64 {
	const hdr = 20 // matches the lite package's ring header
	var payload, consumed int64
	for _, s := range sizes {
		payload += s
		consumed += (s + hdr + 7) &^ 7
	}
	if consumed == 0 {
		return 0
	}
	return float64(payload) / float64(consumed)
}
