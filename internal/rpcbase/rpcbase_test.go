package rpcbase

import (
	"bytes"
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

func newCluster(t *testing.T, n int) *cluster.Cluster {
	t.Helper()
	cfg := params.Default()
	return cluster.MustNew(&cfg, n, 1<<30)
}

func echo(in []byte) []byte { return append([]byte(nil), in...) }

func TestHERDEcho(t *testing.T) {
	cls := newCluster(t, 2)
	srv := StartHERD(cls, 1, 2, echo)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := ConnectHERD(cls, srv, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			in := []byte{byte(k), 2, 3}
			out, err := c.Call(p, in)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("call %d: %v != %v", k, out, in)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestHERDLatencySmall(t *testing.T) {
	cls := newCluster(t, 2)
	srv := StartHERD(cls, 1, 1, echo)
	var lat simtime.Time
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := ConnectHERD(cls, srv, 0)
		if err != nil {
			t.Fatal(err)
		}
		in := make([]byte, 8)
		if _, err := c.Call(p, in); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if _, err := c.Call(p, in); err != nil {
			t.Fatal(err)
		}
		lat = p.Now() - start
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	// Paper Figure 10: HERD small-message RPC is ~3-5us.
	if lat < time.Microsecond || lat > 8*time.Microsecond {
		t.Fatalf("HERD 8B latency = %v, want a few microseconds", lat)
	}
}

func TestHERDMultipleClients(t *testing.T) {
	cls := newCluster(t, 4)
	srv := StartHERD(cls, 0, 2, echo)
	for n := 1; n < 4; n++ {
		n := n
		cls.GoOn(n, "client", func(p *simtime.Proc) {
			c, err := ConnectHERD(cls, srv, n)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 15; k++ {
				in := []byte{byte(n), byte(k)}
				out, err := c.Call(p, in)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, in) {
					t.Fatalf("client %d call %d mismatch", n, k)
				}
			}
		})
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.RegionChecks == 0 {
		t.Fatal("HERD server performed no region scans")
	}
}

func TestHERDServerBurnsCPUWhenIdle(t *testing.T) {
	cls := newCluster(t, 2)
	srv := StartHERD(cls, 1, 1, echo)
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := ConnectHERD(cls, srv, 0)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Call(p, []byte("x")); err != nil {
			t.Fatal(err)
		}
		// Now go idle for a long stretch; HERD's poller keeps spinning.
		p.Sleep(2 * time.Millisecond)
		if _, err := c.Call(p, []byte("y")); err != nil {
			t.Fatal(err)
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if cls.Nodes[1].CPU.Busy() < 2*time.Millisecond {
		t.Fatalf("server CPU = %v; a spinning HERD worker must burn the idle time", cls.Nodes[1].CPU.Busy())
	}
}

func TestFaSSTEcho(t *testing.T) {
	cls := newCluster(t, 2)
	srv, err := StartFaSST(cls, 1, 1, echo)
	if err != nil {
		t.Fatal(err)
	}
	cls.GoOn(0, "client", func(p *simtime.Proc) {
		c, err := ConnectFaSST(cls, srv, 0)
		if err != nil {
			t.Fatal(err)
		}
		for k := 0; k < 20; k++ {
			in := []byte{byte(k), 9}
			out, err := c.Call(p, in)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(out, in) {
				t.Fatalf("call %d mismatch", k)
			}
		}
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	if srv.Handled != 20 {
		t.Fatalf("handled = %d", srv.Handled)
	}
}

func TestFaSSTConcurrentClients(t *testing.T) {
	cls := newCluster(t, 3)
	srv, err := StartFaSST(cls, 0, 1, echo)
	if err != nil {
		t.Fatal(err)
	}
	for n := 1; n < 3; n++ {
		n := n
		cls.GoOn(n, "client", func(p *simtime.Proc) {
			c, err := ConnectFaSST(cls, srv, n)
			if err != nil {
				t.Fatal(err)
			}
			for k := 0; k < 25; k++ {
				in := []byte{byte(n), byte(k), 7}
				out, err := c.Call(p, in)
				if err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(out, in) {
					t.Fatalf("client %d mismatch", n)
				}
			}
		})
	}
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestFaRMPingPong(t *testing.T) {
	cls := newCluster(t, 2)
	pair, err := NewFaRMPair(cls, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	var rtt simtime.Time
	cls.GoOn(1, "responder", func(p *simtime.Proc) {
		e := pair.End(1)
		for k := 0; k < 10; k++ {
			msg, err := e.Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := e.Send(p, msg); err != nil {
				t.Fatal(err)
			}
		}
	})
	cls.GoOn(0, "pinger", func(p *simtime.Proc) {
		e := pair.End(0)
		// Warm up.
		_ = e.Send(p, []byte("warm"))
		if _, err := e.Recv(p); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		for k := 0; k < 9; k++ {
			_ = e.Send(p, []byte("ping"))
			out, err := e.Recv(p)
			if err != nil {
				t.Fatal(err)
			}
			if string(out) != "ping" {
				t.Fatalf("got %q", out)
			}
		}
		rtt = (p.Now() - start) / 9
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	// Two one-sided writes ≈ 3-4us round trip.
	if rtt < time.Microsecond || rtt > 8*time.Microsecond {
		t.Fatalf("FaRM ping-pong = %v, want a few microseconds", rtt)
	}
}

func TestRQClasses(t *testing.T) {
	sizes := []int64{100, 200, 300, 400, 1000, 4000, 8000, 16000}
	c1 := RQClasses(sizes, 1)
	if len(c1) != 1 || c1[0] != 16000 {
		t.Fatalf("1 class = %v, want [16000]", c1)
	}
	c4 := RQClasses(sizes, 4)
	if len(c4) < 2 || c4[len(c4)-1] != 16000 {
		t.Fatalf("4 classes = %v", c4)
	}
	for i := 1; i < len(c4); i++ {
		if c4[i] <= c4[i-1] {
			t.Fatalf("classes not increasing: %v", c4)
		}
	}
}

func TestUtilizationOrdering(t *testing.T) {
	// Heavy-tailed sizes: more RQ classes improve send-based
	// utilization, but LITE beats all of them.
	sizes := make([]int64, 0, 1000)
	for i := 0; i < 1000; i++ {
		switch {
		case i%100 == 0:
			sizes = append(sizes, 60000)
		case i%10 == 0:
			sizes = append(sizes, 4000)
		default:
			sizes = append(sizes, 100)
		}
	}
	var prev float64
	for k := 1; k <= 4; k++ {
		u := SendRQUtilization(sizes, RQClasses(sizes, k))
		if u <= 0 || u > 1 {
			t.Fatalf("utilization %d RQs = %f out of range", k, u)
		}
		if u+1e-9 < prev {
			t.Fatalf("utilization decreased with more RQs: %f -> %f", prev, u)
		}
		prev = u
	}
	lite := LITERingUtilization(sizes)
	if lite <= prev {
		t.Fatalf("LITE utilization %f should beat best send-based %f", lite, prev)
	}
	if lite < 0.5 || lite > 1 {
		t.Fatalf("LITE utilization = %f out of plausible range", lite)
	}
}

func TestSendRQUtilizationOversized(t *testing.T) {
	// Messages larger than the largest class consume multiple buffers.
	u := SendRQUtilization([]int64{2500}, []int64{1000})
	if u != 2500.0/3000.0 {
		t.Fatalf("u = %f, want %f", u, 2500.0/3000.0)
	}
}
