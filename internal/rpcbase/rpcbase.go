// Package rpcbase implements the RPC systems the paper compares LITE
// against, each with the communication pattern and CPU behaviour of
// the original:
//
//   - HERD-style RPC [38]: requests are one-sided RDMA writes into
//     per-client regions that dedicated server threads busy-poll;
//     responses are unreliable-datagram sends.
//   - FaSST-style RPC [39]: both directions are UD sends; a master
//     poller thread receives requests and runs the handler inline.
//   - FaRM-style messaging [19]: both directions are one-sided RDMA
//     writes into ring buffers that the receiver busy-polls.
//   - Send/recv-based RPC memory accounting for the paper's Figure 12:
//     receive buffers must be pre-posted at worst-case sizes, wasting
//     memory that LITE's write-imm rings do not.
//
// All of them run on the same simulated verbs substrate as LITE, so
// every comparison in the evaluation is between two executable
// implementations.
package rpcbase

import (
	"encoding/binary"

	"lite/internal/simtime"
)

// Handler executes one RPC request and returns the response payload.
type Handler func(input []byte) []byte

// frame layout helpers shared by the baselines:
// [8B seq/token][4B length][payload].
const frameHdr = 12

func putFrame(dst []byte, seq uint64, payload []byte) int {
	binary.LittleEndian.PutUint64(dst[0:], seq)
	binary.LittleEndian.PutUint32(dst[8:], uint32(len(payload)))
	copy(dst[frameHdr:], payload)
	return frameHdr + len(payload)
}

func parseFrame(src []byte) (seq uint64, payload []byte) {
	seq = binary.LittleEndian.Uint64(src[0:])
	n := binary.LittleEndian.Uint32(src[8:])
	if int(frameHdr+n) > len(src) {
		return seq, nil
	}
	return seq, src[frameHdr : frameHdr+n]
}

// busyWait parks p on cond until ready() holds, charging the entire
// wait to p's CPU account — the defining cost of polling designs.
func busyWait(p *simtime.Proc, cond *simtime.Cond, ready func() bool) {
	for !ready() {
		t0 := p.Now()
		cond.Wait(p)
		p.CPUAccount().Charge(p.Now() - t0)
	}
}
