package rpcbase

import (
	"encoding/binary"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/verbs"
)

// fasstMaxMsg bounds one FaSST datagram (request or response).
const fasstMaxMsg = 8192

// fasstHdr extends the common frame with the caller's node and UD QPN
// so the server can address the response datagram.
// [8B token][4B len][4B srcNode][4B srcQPN][payload]
const fasstHdr = frameHdr + 8

// FaSSTServer serves RPCs in the FaSST style: requests and responses
// are UD sends, and a master poller thread both polls the receive CQ
// and executes the handler inline (the design whose throughput
// bottleneck the paper §5.3 notes).
type FaSSTServer struct {
	cls     *cluster.Cluster
	node    int
	ctx     *verbs.Context
	ud      *rnic.QP
	handler Handler

	recvMR   *rnic.MR
	recvSize int64
	nrecv    int

	// Handled counts completed requests.
	Handled int64
}

// StartFaSST starts a FaSST server at node with `pollers` master
// coroutine threads (the original uses one per core).
func StartFaSST(cls *cluster.Cluster, node, pollers int, handler Handler) (*FaSSTServer, error) {
	nd := cls.Nodes[node]
	s := &FaSSTServer{
		cls:     cls,
		node:    node,
		ctx:     verbs.Open(nd.NIC, nd.KernelAS),
		handler: handler,
	}
	s.ud = s.ctx.CreateQP(rnic.UD, s.ctx.CreateCQ(), s.ctx.CreateCQ())
	s.recvSize = fasstMaxMsg
	s.nrecv = 1024
	pa, err := nd.Mem.AllocContiguous(s.recvSize * int64(s.nrecv))
	if err != nil {
		return nil, err
	}
	s.recvMR, err = nd.NIC.RegisterPhysMR(nd.KernelAS, pa, s.recvSize*int64(s.nrecv), rnic.PermRead|rnic.PermWrite)
	if err != nil {
		return nil, err
	}
	for k := 0; k < s.nrecv; k++ {
		_ = s.ud.PostRecv(rnic.PostedRecv{MR: s.recvMR, Off: int64(k) * s.recvSize, Len: s.recvSize, WRID: uint64(k)})
	}
	for w := 0; w < pollers; w++ {
		cls.GoDaemonOn(node, "fasst-master", s.masterLoop)
	}
	return s, nil
}

// masterLoop busy-polls the receive CQ and executes handlers inline.
func (s *FaSSTServer) masterLoop(p *simtime.Proc) {
	cfg := params.Default()
	for {
		cqe := s.ctx.PollCQ(p, s.ud.RecvCQ()) // CPU charged while idle
		buf := make([]byte, cqe.Len)
		off := int64(cqe.RecvWRID) * s.recvSize
		_ = s.recvMR.ReadAt(off, buf)
		_ = s.ud.PostRecv(rnic.PostedRecv{MR: s.recvMR, Off: off, Len: s.recvSize, WRID: cqe.RecvWRID})
		if len(buf) < fasstHdr {
			continue
		}
		token := binary.LittleEndian.Uint64(buf[0:])
		n := binary.LittleEndian.Uint32(buf[8:])
		srcNode := int(binary.LittleEndian.Uint32(buf[12:]))
		srcQPN := int(binary.LittleEndian.Uint32(buf[16:]))
		if int(n)+fasstHdr > len(buf) {
			continue
		}
		out := s.handler(buf[fasstHdr : fasstHdr+int(n)])
		s.Handled++
		// The master coroutine executes the handler and stages the
		// response inline — the serialization point the paper calls a
		// throughput bottleneck (5.3).
		p.Work(400*time.Nanosecond + params.TransferTime(int64(len(out)), cfg.MemcpyBandwidth))
		resp := make([]byte, frameHdr+len(out))
		putFrame(resp, token, out)
		_ = s.ctx.PostSend(p, s.ud, rnic.WR{
			Kind: rnic.OpSend, Signaled: false,
			LocalBuf: resp, Len: int64(len(resp)),
			DestNode: srcNode, DestQPN: srcQPN,
		})
	}
}

// FaSSTClient issues RPCs to a FaSST server over UD.
type FaSSTClient struct {
	cls    *cluster.Cluster
	node   int
	ctx    *verbs.Context
	ud     *rnic.QP
	server *FaSSTServer
	token  uint64

	recvMR   *rnic.MR
	recvSize int64
	nrecv    int
	// Out-of-order responses parked by token.
	stash map[uint64][]byte
}

// ConnectFaSST builds a client endpoint at clientNode.
func ConnectFaSST(cls *cluster.Cluster, s *FaSSTServer, clientNode int) (*FaSSTClient, error) {
	nd := cls.Nodes[clientNode]
	c := &FaSSTClient{
		cls:    cls,
		node:   clientNode,
		ctx:    verbs.Open(nd.NIC, nd.KernelAS),
		server: s,
		stash:  make(map[uint64][]byte),
	}
	c.ud = c.ctx.CreateQP(rnic.UD, c.ctx.CreateCQ(), c.ctx.CreateCQ())
	c.recvSize = fasstMaxMsg
	c.nrecv = 64
	pa, err := nd.Mem.AllocContiguous(c.recvSize * int64(c.nrecv))
	if err != nil {
		return nil, err
	}
	c.recvMR, err = nd.NIC.RegisterPhysMR(nd.KernelAS, pa, c.recvSize*int64(c.nrecv), rnic.PermRead|rnic.PermWrite)
	if err != nil {
		return nil, err
	}
	for k := 0; k < c.nrecv; k++ {
		_ = c.ud.PostRecv(rnic.PostedRecv{MR: c.recvMR, Off: int64(k) * c.recvSize, Len: c.recvSize, WRID: uint64(k)})
	}
	return c, nil
}

// Call performs one RPC: a UD send and a busy-poll for the matching
// response datagram.
func (c *FaSSTClient) Call(p *simtime.Proc, input []byte) ([]byte, error) {
	c.token++
	token := c.token
	req := make([]byte, fasstHdr+len(input))
	binary.LittleEndian.PutUint64(req[0:], token)
	binary.LittleEndian.PutUint32(req[8:], uint32(len(input)))
	binary.LittleEndian.PutUint32(req[12:], uint32(c.node))
	binary.LittleEndian.PutUint32(req[16:], uint32(c.ud.QPN()))
	copy(req[fasstHdr:], input)
	if err := c.ctx.PostSend(p, c.ud, rnic.WR{
		Kind: rnic.OpSend, Signaled: false,
		LocalBuf: req, Len: int64(len(req)),
		DestNode: c.server.node, DestQPN: c.server.ud.QPN(),
	}); err != nil {
		return nil, err
	}
	for {
		if out, ok := c.stash[token]; ok {
			delete(c.stash, token)
			return out, nil
		}
		cqe := c.ctx.PollCQ(p, c.ud.RecvCQ())
		buf := make([]byte, cqe.Len)
		off := int64(cqe.RecvWRID) * c.recvSize
		_ = c.recvMR.ReadAt(off, buf)
		_ = c.ud.PostRecv(rnic.PostedRecv{MR: c.recvMR, Off: off, Len: c.recvSize, WRID: cqe.RecvWRID})
		tok, payload := parseFrame(buf)
		if tok == token {
			return append([]byte(nil), payload...), nil
		}
		c.stash[tok] = append([]byte(nil), payload...)
	}
}
