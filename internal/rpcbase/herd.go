package rpcbase

import (
	"fmt"
	"time"

	"lite/internal/cluster"
	"lite/internal/hostmem"
	"lite/internal/params"
	"lite/internal/rnic"
	"lite/internal/simtime"
	"lite/internal/verbs"
)

// herdSlotSize is the per-client request region size (one in-flight
// request per client, as in HERD).
const herdSlotSize = 8192

// HERDServer serves RPCs in the HERD style: each client gets a
// dedicated request region written with one-sided RDMA writes; server
// worker threads busy-poll the regions of the clients assigned to
// them and answer over UD sends.
type HERDServer struct {
	cls     *cluster.Cluster
	node    int
	ctx     *verbs.Context
	handler Handler
	ud      *rnic.QP
	slots   []*herdSlot
	// newWork wakes workers; in reality they spin over their regions.
	newWork simtime.Cond

	// RegionChecks counts slot scans, a proxy for the per-client
	// polling overhead the paper calls out.
	RegionChecks int64
}

type herdSlot struct {
	client   int
	clientUD int // client's UD QPN for the response
	mr       *rnic.MR
	pa       hostmem.PAddr
	lastSeq  uint64
}

// StartHERD starts a HERD server at node with the given number of
// polling worker threads.
func StartHERD(cls *cluster.Cluster, node, workers int, handler Handler) *HERDServer {
	nd := cls.Nodes[node]
	s := &HERDServer{
		cls:     cls,
		node:    node,
		ctx:     verbs.Open(nd.NIC, nd.KernelAS),
		handler: handler,
	}
	s.ud = s.ctx.CreateQP(rnic.UD, s.ctx.CreateCQ(), s.ctx.CreateCQ())
	for w := 0; w < workers; w++ {
		w := w
		cls.GoDaemonOn(node, fmt.Sprintf("herd-worker%d", w), func(p *simtime.Proc) {
			s.workerLoop(p, w, workers)
		})
	}
	return s
}

// workerLoop scans this worker's share of client regions, burning CPU
// the whole time it waits (HERD's servers spin).
func (s *HERDServer) workerLoop(p *simtime.Proc, w, workers int) {
	buf := make([]byte, herdSlotSize)
	for {
		progress := false
		for idx, slot := range s.slots {
			if idx%workers != w {
				continue
			}
			s.RegionChecks++
			p.Work(30) // ~30ns to check a region's valid header
			if err := s.cls.Nodes[s.node].Mem.Read(slot.pa, buf[:frameHdr]); err != nil {
				continue
			}
			seq, _ := parseFrame(buf[:frameHdr])
			if seq <= slot.lastSeq {
				continue
			}
			_ = s.cls.Nodes[s.node].Mem.Read(slot.pa, buf)
			_, payload := parseFrame(buf)
			slot.lastSeq = seq
			progress = true
			out := s.handler(payload)
			// Request dispatch and response staging on the worker core.
			p.Work(200*time.Nanosecond + params.TransferTime(int64(len(out)), params.Default().MemcpyBandwidth))
			resp := make([]byte, frameHdr+len(out))
			putFrame(resp, seq, out)
			_ = s.ctx.PostSend(p, s.ud, rnic.WR{
				Kind: rnic.OpSend, Signaled: false,
				LocalBuf: resp, Len: int64(len(resp)),
				DestNode: slot.client, DestQPN: slot.clientUD,
			})
		}
		if !progress {
			// Spin: wait for the next write to any region, charging the
			// whole gap as CPU.
			t0 := p.Now()
			s.newWork.Wait(p)
			p.CPUAccount().Charge(p.Now() - t0)
		}
	}
}

// HERDClient is one client's connection to a HERD server.
type HERDClient struct {
	cls    *cluster.Cluster
	node   int
	ctx    *verbs.Context
	server *HERDServer
	rc     *rnic.QP
	ud     *rnic.QP
	slot   *herdSlot
	rkey   uint32
	seq    uint64
	// UD receive buffers, indexed by WRID.
	recvMR   *rnic.MR
	recvSize int64
	nrecv    int
}

// ConnectHERD registers a new client with the server and builds its
// queue pairs.
func ConnectHERD(cls *cluster.Cluster, s *HERDServer, clientNode int) (*HERDClient, error) {
	nd := cls.Nodes[clientNode]
	c := &HERDClient{
		cls:    cls,
		node:   clientNode,
		ctx:    verbs.Open(nd.NIC, nd.KernelAS),
		server: s,
	}
	// Client-side QPs.
	c.ud = c.ctx.CreateQP(rnic.UD, c.ctx.CreateCQ(), c.ctx.CreateCQ())
	sqp := s.ctx.CreateQP(rnic.RC, s.ctx.CreateCQ(), s.ctx.CreateCQ())
	c.rc = c.ctx.CreateQP(rnic.RC, c.ctx.CreateCQ(), c.ctx.CreateCQ())
	c.rc.Connect(s.node, sqp.QPN())
	sqp.Connect(clientNode, c.rc.QPN())

	// Server-side request region for this client.
	pa, err := cls.Nodes[s.node].Mem.AllocContiguous(herdSlotSize)
	if err != nil {
		return nil, err
	}
	mr, err := cls.Nodes[s.node].NIC.RegisterPhysMR(cls.Nodes[s.node].KernelAS, pa, herdSlotSize, rnic.PermRead|rnic.PermWrite)
	if err != nil {
		return nil, err
	}
	slot := &herdSlot{client: clientNode, clientUD: c.ud.QPN(), mr: mr, pa: pa}
	s.slots = append(s.slots, slot)
	c.slot = slot
	c.rkey = mr.Key()
	// Wake server workers when the region is written.
	env := cls.Env
	cls.Nodes[s.node].Mem.AddWatch(pa, herdSlotSize, func() { s.newWork.Broadcast(env) })

	// Client UD receive buffers.
	c.recvSize = herdSlotSize
	c.nrecv = 64
	rpa, err := nd.Mem.AllocContiguous(c.recvSize * int64(c.nrecv))
	if err != nil {
		return nil, err
	}
	c.recvMR, err = nd.NIC.RegisterPhysMR(nd.KernelAS, rpa, c.recvSize*int64(c.nrecv), rnic.PermRead|rnic.PermWrite)
	if err != nil {
		return nil, err
	}
	for k := 0; k < c.nrecv; k++ {
		_ = c.ud.PostRecv(rnic.PostedRecv{MR: c.recvMR, Off: int64(k) * c.recvSize, Len: c.recvSize, WRID: uint64(k)})
	}
	return c, nil
}

// Call performs one RPC: a one-sided write of the request into the
// server's per-client region, then a busy-poll of the UD receive CQ
// for the response.
func (c *HERDClient) Call(p *simtime.Proc, input []byte) ([]byte, error) {
	c.seq++
	req := make([]byte, frameHdr+len(input))
	putFrame(req, c.seq, input)
	// HERD writes payload-then-header so the header flip publishes the
	// request; the simulated write commits atomically, so one write
	// suffices.
	if err := c.ctx.PostSend(p, c.rc, rnic.WR{
		Kind: rnic.OpWrite, Signaled: false,
		LocalBuf: req, Len: int64(len(req)),
		RemoteKey: c.rkey, RemoteOff: 0,
	}); err != nil {
		return nil, err
	}
	for {
		cqe := c.ctx.PollCQ(p, c.ud.RecvCQ()) // busy-poll, CPU charged
		buf := make([]byte, cqe.Len)
		off := int64(cqe.RecvWRID) * c.recvSize
		_ = c.recvMR.ReadAt(off, buf)
		_ = c.ud.PostRecv(rnic.PostedRecv{MR: c.recvMR, Off: off, Len: c.recvSize, WRID: cqe.RecvWRID})
		seq, payload := parseFrame(buf)
		if seq == c.seq {
			return append([]byte(nil), payload...), nil
		}
		// Stale or reordered response: keep polling.
	}
}
