package load

import (
	"fmt"

	"lite/internal/cluster"
	"lite/internal/detrand"
	"lite/internal/obs"
	"lite/internal/simtime"
)

// Multi-issuer open-loop generation. A single aggregate Poisson stream
// is split deterministically across N client nodes, so the server sees
// exactly the aggregate arrival process regardless of how many issuers
// carry it, and each issuer's sub-stream is itself Poisson (thinning a
// Poisson process with independent coin flips yields independent
// Poisson processes at the thinned rates). Splitting one stream —
// instead of generating N independent ones — keeps the aggregate's
// arrival instants identical when the issuer count or weights change,
// which makes fairness comparisons an apples-to-apples ablation.

// splitMix is folded into the seed for the thinning coin flips so the
// split decisions are decorrelated from the inter-arrival draws that
// consumed the same seed in Poisson.
const splitMix = 0x9e3779b97f4a7c15

// SplitPoisson splits an aggregate Poisson schedule evenly across
// issuers sub-streams. Equivalent to SplitPoissonWeighted with equal
// weights.
func SplitPoisson(seed uint64, ratePerUs float64, n int, start simtime.Time, issuers int) []Schedule {
	w := make([]float64, issuers)
	for i := range w {
		w[i] = 1
	}
	return SplitPoissonWeighted(seed, ratePerUs, n, start, w)
}

// SplitPoissonWeighted splits an aggregate Poisson(seed, ratePerUs, n,
// start) schedule across len(weights) sub-streams, assigning each
// arrival to issuer i with probability weights[i]/sum(weights). The
// split is a pure function of the arguments: the same seed replays the
// same per-issuer schedules bit for bit, and the concatenation of the
// sub-streams is exactly the aggregate schedule.
func SplitPoissonWeighted(seed uint64, ratePerUs float64, n int, start simtime.Time, weights []float64) []Schedule {
	if len(weights) == 0 {
		panic("load: SplitPoissonWeighted needs at least one weight")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 {
			panic(fmt.Sprintf("load: negative weight %g at index %d", w, i))
		}
		sum += w
	}
	if sum <= 0 {
		panic("load: weights sum to zero")
	}
	agg := Poisson(seed, ratePerUs, n, start)
	r := detrand.New(seed ^ splitMix)
	out := make([]Schedule, len(weights))
	for _, at := range agg {
		u := r.Float64() * sum
		i := 0
		for i < len(weights)-1 && u >= weights[i] {
			u -= weights[i]
			i++
		}
		out[i] = append(out[i], at)
	}
	return out
}

// RunMulti spawns one open-loop generator per issuer, issuer i on
// nodes[i] driving scheds[i]. issue receives the issuer index alongside
// the per-issuer request index. Results are per issuer, complete once
// the cluster's event loop drains.
func RunMulti(cls *cluster.Cluster, nodes []int, scheds []Schedule, issue func(p *simtime.Proc, issuer, k int) Status) []*Result {
	if len(nodes) != len(scheds) {
		panic(fmt.Sprintf("load: RunMulti got %d nodes for %d schedules", len(nodes), len(scheds)))
	}
	out := make([]*Result, len(nodes))
	for i := range nodes {
		i := i
		out[i] = Run(cls, nodes[i], scheds[i], func(p *simtime.Proc, k int) Status {
			return issue(p, i, k)
		})
	}
	return out
}

// Merge folds several per-issuer results into one aggregate view. The
// histogram is the union of the per-issuer success histograms.
func Merge(rs []*Result) *Result {
	agg := &Result{Hist: &obs.Histogram{}}
	for _, r := range rs {
		if r == nil {
			continue
		}
		agg.Issued += r.Issued
		agg.OK += r.OK
		agg.Shed += r.Shed
		agg.Timeout += r.Timeout
		agg.Errored += r.Errored
		agg.Hist.Merge(r.Hist)
		if agg.Start == 0 || (r.Start != 0 && r.Start < agg.Start) {
			agg.Start = r.Start
		}
		if r.End > agg.End {
			agg.End = r.End
		}
	}
	return agg
}
