// Package load is an open-loop load generator for the simulated
// cluster. Closed-loop benchmark loops (issue, wait, issue) suffer
// coordinated omission: a slow reply delays the next request, so the
// measured distribution silently excludes exactly the requests that
// would have piled up behind the slow one. Here arrivals follow a
// Poisson process fixed ahead of time in virtual time; every request
// is issued at its scheduled instant regardless of how the previous
// ones are faring, and latency is measured from the scheduled arrival,
// so queueing delay at an overloaded server is fully visible in the
// tail.
package load

import (
	"math"

	"lite/internal/cluster"
	"lite/internal/detrand"
	"lite/internal/obs"
	"lite/internal/simtime"
)

// Schedule is a precomputed list of arrival times, ascending.
type Schedule []simtime.Time

// Poisson builds an n-request Poisson arrival schedule at ratePerUs
// requests per microsecond, starting at start. The schedule is a pure
// function of its arguments, so a rerun with the same seed replays the
// same arrivals bit for bit.
func Poisson(seed uint64, ratePerUs float64, n int, start simtime.Time) Schedule {
	r := detrand.New(seed)
	s := make(Schedule, n)
	at := float64(start)
	for k := 0; k < n; k++ {
		// Exponential inter-arrival gap in nanoseconds. Float64 is in
		// [0,1), so 1-u is in (0,1] and the log is finite.
		u := r.Float64()
		at += -math.Log(1-u) * 1000.0 / ratePerUs
		s[k] = simtime.Time(at)
	}
	return s
}

// Status classifies the outcome of one request.
type Status int

const (
	StatusOK Status = iota
	StatusShed
	StatusTimeout
	StatusError
)

// Result accumulates the outcome of a run. Hist records latency —
// completion minus *scheduled* arrival — for successful requests
// only; sheds and timeouts are tallied separately so a run that fails
// everything fast cannot masquerade as a low-latency run.
type Result struct {
	Issued  int64
	OK      int64
	Shed    int64
	Timeout int64
	Errored int64
	Hist    *obs.Histogram
	Start   simtime.Time
	End     simtime.Time
}

// P50 returns the median success latency.
func (r *Result) P50() simtime.Time { return r.Hist.Quantile(0.50) }

// P99 returns the 99th-percentile success latency.
func (r *Result) P99() simtime.Time { return r.Hist.Quantile(0.99) }

// P999 returns the 99.9th-percentile success latency.
func (r *Result) P999() simtime.Time { return r.Hist.Quantile(0.999) }

// AchievedPerUs returns the successful-completion throughput in
// requests per microsecond over the run's span.
func (r *Result) AchievedPerUs() float64 {
	if r.End <= r.Start {
		return 0
	}
	return float64(r.OK) * 1000.0 / float64(r.End-r.Start)
}

// Run spawns the open-loop generator on the given node: a dispatcher
// thread sleeps to each scheduled arrival and forks a fresh thread per
// request, so a request that stalls never delays the ones scheduled
// behind it. issue performs request k and classifies its outcome. The
// returned Result is complete once the cluster's event loop drains
// (read it after cluster.Run returns).
func Run(cls *cluster.Cluster, node int, sched Schedule, issue func(p *simtime.Proc, k int) Status) *Result {
	res := &Result{Hist: &obs.Histogram{}}
	if len(sched) == 0 {
		return res
	}
	res.Start = sched[0]
	cls.GoOn(node, "loadgen", func(p *simtime.Proc) {
		for k, at := range sched {
			if at > p.Now() {
				p.SleepUntil(at)
			}
			k, at := k, at
			cls.GoOn(node, "loadreq", func(q *simtime.Proc) {
				res.Issued++
				st := issue(q, k)
				switch st {
				case StatusOK:
					res.OK++
					// Latency from the scheduled arrival, not from the
					// issue instant: queueing in the generator itself
					// (there is none — the fork is free in virtual
					// time) and at the server both count.
					res.Hist.Record(obs.Time(q.Now() - at))
				case StatusShed:
					res.Shed++
				case StatusTimeout:
					res.Timeout++
				default:
					res.Errored++
				}
				if q.Now() > res.End {
					res.End = q.Now()
				}
			})
		}
	})
	return res
}
