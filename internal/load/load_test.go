package load

import (
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

func TestPoissonDeterministic(t *testing.T) {
	a := Poisson(99, 1.5, 1000, 10*simtime.Time(time.Microsecond))
	b := Poisson(99, 1.5, 1000, 10*simtime.Time(time.Microsecond))
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for k := range a {
		if a[k] != b[k] {
			t.Fatalf("arrival %d differs: %v vs %v", k, a[k], b[k])
		}
	}
	// A different seed must give a different schedule, or the seed is
	// being ignored.
	c := Poisson(100, 1.5, 1000, 10*simtime.Time(time.Microsecond))
	same := true
	for k := range a {
		if a[k] != c[k] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("seeds 99 and 100 produced identical schedules")
	}
}

func TestPoissonAscendingAndRate(t *testing.T) {
	start := simtime.Time(50 * time.Microsecond)
	s := Poisson(7, 2.0, 5000, start)
	prev := start
	for k, at := range s {
		if at < prev {
			t.Fatalf("arrival %d goes backwards: %v < %v", k, at, prev)
		}
		prev = at
	}
	// Mean inter-arrival at 2 req/us is 500ns; over 5000 samples the
	// empirical mean should be within a few percent.
	mean := float64(s[len(s)-1]-start) / float64(len(s))
	if mean < 450 || mean > 550 {
		t.Fatalf("mean inter-arrival = %.1fns, want ~500ns", mean)
	}
}

// runSynthetic drives the generator against a synthetic service: a
// single-worker queue simulated with a mutex, each request costing a
// fixed service time. Everything is virtual-time deterministic.
func runSynthetic(t *testing.T, seed uint64) *Result {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 1, 1<<20)
	var mu simtime.Mutex
	sched := Poisson(seed, 1.0, 400, simtime.Time(10*time.Microsecond))
	res := Run(cls, 0, sched, func(p *simtime.Proc, k int) Status {
		mu.Lock(p)
		p.Work(800 * time.Nanosecond)
		mu.Unlock(p)
		return StatusOK
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunDeterministic(t *testing.T) {
	a := runSynthetic(t, 42)
	b := runSynthetic(t, 42)
	if a.Issued != b.Issued || a.OK != b.OK {
		t.Fatalf("counts differ: %+v vs %+v", a, b)
	}
	for _, q := range []float64{0, 0.5, 0.99, 0.999, 1} {
		if a.Hist.Quantile(q) != b.Hist.Quantile(q) {
			t.Fatalf("q%.3f differs: %v vs %v", q, a.Hist.Quantile(q), b.Hist.Quantile(q))
		}
	}
	if a.P99() != b.P99() {
		t.Fatalf("p99 differs across identical runs: %v vs %v", a.P99(), b.P99())
	}
	if a.End != b.End {
		t.Fatalf("end times differ: %v vs %v", a.End, b.End)
	}
	if a.OK != 400 {
		t.Fatalf("OK = %d, want all 400", a.OK)
	}
}

func TestResultEmpty(t *testing.T) {
	r := &Result{Hist: &obs.Histogram{}}
	if r.P50() != 0 || r.P99() != 0 || r.P999() != 0 {
		t.Fatal("empty result must report zero quantiles")
	}
	if r.AchievedPerUs() != 0 {
		t.Fatal("empty result must report zero throughput")
	}
}
