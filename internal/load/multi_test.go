package load

import (
	"testing"
	"time"

	"lite/internal/cluster"
	"lite/internal/params"
	"lite/internal/simtime"
)

func TestSplitPoissonDeterministic(t *testing.T) {
	start := simtime.Time(10 * time.Microsecond)
	a := SplitPoissonWeighted(42, 2.0, 2000, start, []float64{3, 1, 1, 1})
	b := SplitPoissonWeighted(42, 2.0, 2000, start, []float64{3, 1, 1, 1})
	if len(a) != len(b) {
		t.Fatalf("issuer counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			t.Fatalf("issuer %d lengths differ: %d vs %d", i, len(a[i]), len(b[i]))
		}
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("issuer %d arrival %d differs: %v vs %v", i, k, a[i][k], b[i][k])
			}
		}
	}
	// A different seed must change the split, or the seed is ignored.
	c := SplitPoissonWeighted(43, 2.0, 2000, start, []float64{3, 1, 1, 1})
	same := true
	for i := range a {
		if len(a[i]) != len(c[i]) {
			same = false
			break
		}
		for k := range a[i] {
			if a[i][k] != c[i][k] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 42 and 43 produced identical splits")
	}
}

func TestSplitPoissonUnionIsAggregate(t *testing.T) {
	start := simtime.Time(10 * time.Microsecond)
	agg := Poisson(7, 1.5, 3000, start)
	split := SplitPoisson(7, 1.5, 3000, start, 4)
	// Merging the sub-streams in time order must reproduce the
	// aggregate schedule arrival for arrival: the split only deals out
	// instants, it never moves or drops them.
	idx := make([]int, len(split))
	for k, want := range agg {
		found := false
		for i := range split {
			if idx[i] < len(split[i]) && split[i][idx[i]] == want {
				idx[i]++
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("aggregate arrival %d (%v) missing from the split", k, want)
		}
	}
	total := 0
	for i := range split {
		total += len(split[i])
	}
	if total != len(agg) {
		t.Fatalf("split carries %d arrivals, aggregate has %d", total, len(agg))
	}
}

func TestSplitPoissonWeightProportions(t *testing.T) {
	start := simtime.Time(10 * time.Microsecond)
	n := 20000
	weights := []float64{0.595, 0.135, 0.135, 0.135}
	split := SplitPoissonWeighted(11, 2.0, n, start, weights)
	var sum float64
	for _, w := range weights {
		sum += w
	}
	for i, w := range weights {
		want := float64(n) * w / sum
		got := float64(len(split[i]))
		if got < want*0.93 || got > want*1.07 {
			t.Fatalf("issuer %d got %d arrivals, want ~%.0f (weight %.3f)", i, len(split[i]), want, w)
		}
	}
}

func TestSplitPoissonRejectsBadWeights(t *testing.T) {
	for _, weights := range [][]float64{nil, {}, {1, -0.5}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("weights %v did not panic", weights)
				}
			}()
			SplitPoissonWeighted(1, 1.0, 10, 0, weights)
		}()
	}
}

// runMultiSynthetic mirrors runSynthetic with three issuers sharing one
// single-worker service, so the per-issuer results exercise the full
// RunMulti path under contention.
func runMultiSynthetic(t *testing.T, seed uint64) []*Result {
	t.Helper()
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 3, 1<<20)
	var mu simtime.Mutex
	scheds := SplitPoissonWeighted(seed, 1.0, 400, simtime.Time(10*time.Microsecond), []float64{2, 1, 1})
	res := RunMulti(cls, []int{0, 1, 2}, scheds, func(p *simtime.Proc, issuer, k int) Status {
		mu.Lock(p)
		p.Work(800 * time.Nanosecond)
		mu.Unlock(p)
		return StatusOK
	})
	if err := cls.Run(); err != nil {
		t.Fatal(err)
	}
	return res
}

func TestRunMultiDeterministic(t *testing.T) {
	a := runMultiSynthetic(t, 42)
	b := runMultiSynthetic(t, 42)
	for i := range a {
		if a[i].Issued != b[i].Issued || a[i].OK != b[i].OK {
			t.Fatalf("issuer %d counts differ: %+v vs %+v", i, a[i], b[i])
		}
		if a[i].P99() != b[i].P99() {
			t.Fatalf("issuer %d p99 differs: %v vs %v", i, a[i].P99(), b[i].P99())
		}
		if a[i].End != b[i].End {
			t.Fatalf("issuer %d end times differ: %v vs %v", i, a[i].End, b[i].End)
		}
	}
	m := Merge(a)
	if m.OK != 400 {
		t.Fatalf("merged OK = %d, want all 400", m.OK)
	}
	if m.Hist.Count() != 400 {
		t.Fatalf("merged histogram holds %d samples, want 400", m.Hist.Count())
	}
}

func TestRunMultiRejectsMismatch(t *testing.T) {
	cfg := params.Default()
	cls := cluster.MustNew(&cfg, 2, 1<<20)
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched nodes/schedules did not panic")
		}
	}()
	RunMulti(cls, []int{0}, make([]Schedule, 2), func(p *simtime.Proc, issuer, k int) Status {
		return StatusOK
	})
}
