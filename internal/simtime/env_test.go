package simtime

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	e := NewEnv()
	var end Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		p.Sleep(3 * time.Microsecond)
		end = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if end != 8*time.Microsecond {
		t.Fatalf("end = %v, want 8µs", end)
	}
}

func TestZeroAndNegativeSleep(t *testing.T) {
	e := NewEnv()
	e.Go("p", func(p *Proc) {
		p.Sleep(0)
		p.Sleep(-time.Second)
		if p.Now() != 0 {
			t.Errorf("now = %v, want 0", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv()
		var order []string
		for _, spec := range []struct {
			name string
			d    Time
		}{{"a", 3 * time.Microsecond}, {"b", 1 * time.Microsecond}, {"c", 2 * time.Microsecond}} {
			spec := spec
			e.Go(spec.name, func(p *Proc) {
				p.Sleep(spec.d)
				order = append(order, spec.name)
			})
		}
		if err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return order
	}
	first := run()
	if len(first) != 3 || first[0] != "b" || first[1] != "c" || first[2] != "a" {
		t.Fatalf("order = %v, want [b c a]", first)
	}
	for i := 0; i < 20; i++ {
		again := run()
		for j := range first {
			if first[j] != again[j] {
				t.Fatalf("run %d nondeterministic: %v vs %v", i, first, again)
			}
		}
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Go("p", func(p *Proc) {
			p.Sleep(time.Microsecond)
			order = append(order, i)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want ascending spawn order", order)
		}
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEnv()
	var c Cond
	e.Go("stuck", func(p *Proc) {
		c.Wait(p)
	})
	err := e.Run()
	de, ok := err.(*DeadlockError)
	if !ok {
		t.Fatalf("err = %v, want DeadlockError", err)
	}
	if len(de.Parked) != 1 || de.Parked[0] != "stuck" {
		t.Fatalf("parked = %v", de.Parked)
	}
}

func TestDaemonDoesNotKeepSimulationAlive(t *testing.T) {
	e := NewEnv()
	e.GoDaemon("poller", func(p *Proc) {
		for {
			p.Sleep(time.Microsecond)
		}
	})
	e.Go("main", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 10*time.Microsecond {
		t.Fatalf("now = %v, want 10µs", e.Now())
	}
}

func TestSpawnFromWithinProcess(t *testing.T) {
	e := NewEnv()
	var childRan bool
	e.Go("parent", func(p *Proc) {
		p.Sleep(time.Microsecond)
		p.env.Go("child", func(q *Proc) {
			q.Sleep(time.Microsecond)
			childRan = true
		})
		p.Sleep(5 * time.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !childRan {
		t.Fatal("child never ran")
	}
}

func TestSetLimitStopsRun(t *testing.T) {
	e := NewEnv()
	e.SetLimit(5 * time.Microsecond)
	progress := 0
	e.Go("long", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(time.Microsecond)
			progress++
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if progress < 4 || progress > 5 {
		t.Fatalf("progress = %d, want ~5", progress)
	}
}

func TestWorkChargesCPU(t *testing.T) {
	e := NewEnv()
	acct := &CPUAccount{}
	e.Go("worker", func(p *Proc) {
		p.SetCPUAccount(acct)
		p.Work(4 * time.Microsecond)
		p.Sleep(10 * time.Microsecond) // idle: not charged
		p.Work(6 * time.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if acct.Busy() != 10*time.Microsecond {
		t.Fatalf("busy = %v, want 10µs", acct.Busy())
	}
	if e.Now() != 20*time.Microsecond {
		t.Fatalf("now = %v, want 20µs", e.Now())
	}
}

func TestYieldLetsPeersRun(t *testing.T) {
	e := NewEnv()
	var order []string
	e.Go("a", func(p *Proc) {
		order = append(order, "a1")
		p.Yield()
		order = append(order, "a2")
	})
	e.Go("b", func(p *Proc) {
		order = append(order, "b1")
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"a1", "b1", "a2"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}
