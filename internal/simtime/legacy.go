package simtime

import "container/heap"

// This file preserves the original scheduler — a container/heap binary
// heap of pointer events plus a dedicated Run goroutine that pays two
// channel handoffs per process wakeup (the park notification and the
// resume send). It is retained for two reasons:
//
//   - It is the measured baseline: the `scale` litebench experiment
//     runs the same 500-node workload under both schedulers and gates
//     on the calendar queue's events-per-second advantage.
//   - It is a cross-check oracle: tests drive identical workloads
//     through both schedulers and assert bit-identical event orders.

// NewLegacyEnv returns an environment driven by the original
// binary-heap, two-handoff scheduler. Semantics and event ordering are
// identical to NewEnv; only the wall-time cost differs.
func NewLegacyEnv() *Env {
	return &Env{
		legacy: true,
		parkCh: make(chan struct{}),
		procs:  make(map[int]*Proc),
	}
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

func (h *eventHeap) push(ev *event) { heap.Push(h, ev) }
func (h *eventHeap) popMin() *event { return heap.Pop(h).(*event) }

// runLegacy is the original scheduler loop: a dedicated goroutine (the
// Run caller) that pops events, resumes parked processes one at a
// time, and waits for each to park again before continuing.
func (e *Env) runLegacy() error {
	for {
		if e.live == 0 {
			return nil
		}
		var ev *event
		for e.evq.Len() > 0 {
			c := e.evq.popMin()
			if c.fn != nil {
				if e.limit > 0 && c.t > e.limit {
					return nil
				}
				if c.t > e.now {
					e.now = c.t
				}
				e.events++
				c.fn(e)
				continue
			}
			if c.gen == c.p.gen && c.p.parked && !c.p.done {
				ev = c
				break
			}
		}
		if ev == nil {
			return e.deadlock()
		}
		if e.limit > 0 && ev.t > e.limit {
			return nil
		}
		if ev.t > e.now {
			e.now = ev.t
		}
		e.events++
		ev.p.parked = false
		ev.p.resume <- ev.reason
		<-e.parkCh
		if ev.p.done {
			delete(e.procs, ev.p.id)
			if !ev.p.daemon {
				e.live--
			}
		}
	}
}
