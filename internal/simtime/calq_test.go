package simtime

import (
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

// calqRand is a tiny deterministic PRNG so the equivalence workloads
// replay identically run to run.
type calqRand uint64

func (x *calqRand) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = calqRand(v)
	return v
}

// mixedWorkload drives env with a delay mix chosen to land events in
// every calendar tier — the same-instant run queue (yields), L0 (ns-
// and µs-scale sleeps), L1 (ms-scale sleeps that cascade on bucket
// rollover), and the overflow heap (multi-second timers beyond the
// ~4.3 s L1 horizon) — plus cross-proc signals and scheduler
// callbacks. It returns the full dispatch trace.
func mixedWorkload(env *Env, procs, steps int) ([]string, error) {
	var trace []string
	var wake Cond
	for pi := 0; pi < procs; pi++ {
		pi := pi
		env.Go(fmt.Sprintf("w%d", pi), func(p *Proc) {
			rng := calqRand(pi*2654435761 + 1)
			for k := 0; k < steps; k++ {
				trace = append(trace, fmt.Sprintf("%d p%d.%d", p.Now(), pi, k))
				switch rng.next() % 8 {
				case 0:
					p.Yield()
				case 1:
					p.Sleep(Time(rng.next() % 300)) // same L0 bucket or next
				case 2:
					p.Sleep(Time(rng.next() % 100_000)) // within the L0 lap
				case 3:
					p.Sleep(Time(2_000_000 + rng.next()%20_000_000)) // L1, cascades
				case 4:
					p.Sleep(Time(4_500_000_000 + rng.next()%3_000_000_000)) // overflow
				case 5:
					t := p.Now() + Time(rng.next()%5_000)
					p.Env().At(t, func(e *Env) {
						trace = append(trace, fmt.Sprintf("%d cb%d.%d", e.Now(), pi, k))
					})
				case 6:
					wake.Signal(p.Env())
					p.Yield()
				case 7:
					if !wake.WaitTimeout(p, Time(rng.next()%3_000_000)) {
						trace = append(trace, fmt.Sprintf("%d timeout%d.%d", p.Now(), pi, k))
					}
				}
			}
			// Drain any waiters left on the cond so the run can finish.
			wake.Broadcast(p.Env())
		})
	}
	err := env.Run()
	return trace, err
}

// TestSchedulerEquivalence replays one randomized workload under the
// calendar-queue scheduler and the legacy binary-heap scheduler and
// requires bit-identical dispatch traces — the determinism contract
// that lets every seeded experiment reproduce across scheduler
// implementations.
func TestSchedulerEquivalence(t *testing.T) {
	calTrace, calErr := mixedWorkload(NewEnv(), 24, 40)
	heapTrace, heapErr := mixedWorkload(NewLegacyEnv(), 24, 40)
	if (calErr == nil) != (heapErr == nil) {
		t.Fatalf("run errors diverge: calendar=%v legacy=%v", calErr, heapErr)
	}
	if len(calTrace) != len(heapTrace) {
		t.Fatalf("trace lengths diverge: calendar=%d legacy=%d", len(calTrace), len(heapTrace))
	}
	for i := range calTrace {
		if calTrace[i] != heapTrace[i] {
			t.Fatalf("traces diverge at step %d: calendar=%q legacy=%q", i, calTrace[i], heapTrace[i])
		}
	}
	if len(calTrace) < 24*40 {
		t.Fatalf("workload too small to be meaningful: %d trace entries", len(calTrace))
	}
}

// TestSameInstantSeqOrder pins the tie-break rule: events scheduled for
// the same instant dispatch in scheduling (seq) order, whether they
// sit in the run queue or in the L0 bucket the clock is entering.
func TestSameInstantSeqOrder(t *testing.T) {
	env := NewEnv()
	var got []int
	const at = Time(1000)
	for i := 0; i < 32; i++ {
		i := i
		env.At(at, func(*Env) { got = append(got, i) })
	}
	// A second instant reached via a timer wake, mixing run-queue
	// entries (scheduled at now) with wheel entries (scheduled before).
	const at2 = at + 500
	env.At(at2, func(e *Env) { got = append(got, 100) })
	env.At(at, func(e *Env) {
		e.At(at2, func(*Env) { got = append(got, 101) })
	})
	env.Go("driver", func(p *Proc) { p.SleepUntil(at2 + 1) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 34 {
		t.Fatalf("got %d events, want 34", len(got))
	}
	for i := 0; i < 32; i++ {
		if got[i] != i {
			t.Fatalf("same-instant order violated at %d: got %v", i, got[:32])
		}
	}
	// seq order at at2: the boot-time callback (100) was scheduled
	// before the one armed during the at-batch (101).
	if got[32] != 100 || got[33] != 101 {
		t.Fatalf("cross-instant seq order violated: tail %v", got[32:])
	}
}

// TestFarFutureOverflow exercises the overflow heap: timers far beyond
// the ~4.3 s L1 horizon must still fire in (t, seq) order, including
// when nearer timers are inserted after them (the drain-on-advance
// invariant).
func TestFarFutureOverflow(t *testing.T) {
	env := NewEnv()
	var got []Time
	times := []Time{
		90 * time.Second,
		10 * time.Second,
		5 * time.Second,
		30 * time.Second,
		10 * time.Second, // duplicate instant: seq breaks the tie
	}
	for _, at := range times {
		at := at
		env.At(at, func(e *Env) {
			got = append(got, e.Now())
			// Schedule a nearer event from inside a drained overflow
			// event; it must still sort correctly.
			e.After(time.Millisecond, func(e *Env) { got = append(got, e.Now()) })
		})
	}
	env.Go("driver", func(p *Proc) { p.SleepUntil(100 * time.Second) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{
		5 * time.Second, 5*time.Second + time.Millisecond,
		10 * time.Second, 10 * time.Second, 10*time.Second + time.Millisecond, 10*time.Second + time.Millisecond,
		30 * time.Second, 30*time.Second + time.Millisecond,
		90 * time.Second, 90*time.Second + time.Millisecond,
	}
	if len(got) != len(want) {
		t.Fatalf("got %d events, want %d: %v", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v (full: %v)", i, got[i], want[i], got)
		}
	}
}

// TestBucketRollover exercises L1 cascade: a sleep past the ~1.05 ms
// L0 lap lands in L1 and must cascade into L0 (sorted) when the clock
// reaches its bucket, interleaving correctly with L0-native timers.
func TestBucketRollover(t *testing.T) {
	env := NewEnv()
	var got []Time
	// One event per 100 µs across 40 ms: every L1 bucket boundary in
	// range is crossed, and each cascade must preserve order.
	for i := 1; i <= 400; i++ {
		env.At(Time(i)*100*time.Microsecond, func(e *Env) { got = append(got, e.Now()) })
	}
	env.Go("driver", func(p *Proc) { p.SleepUntil(41 * time.Millisecond) })
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 400 {
		t.Fatalf("got %d events, want 400", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("order violated at %d: %v after %v", i, got[i], got[i-1])
		}
	}
	// 400 callbacks + the driver's spawn wake + its sleep wake.
	if env.Events() != 402 {
		t.Fatalf("Events() = %d, want 402", env.Events())
	}
}

// TestDeadlockReported checks that a stuck simulation names the parked
// processes instead of hanging, under both schedulers.
func TestDeadlockReported(t *testing.T) {
	for _, mk := range []struct {
		name string
		env  *Env
	}{{"calendar", NewEnv()}, {"legacy", NewLegacyEnv()}} {
		var c Cond
		mk.env.Go("stuck", func(p *Proc) { c.Wait(p) })
		err := mk.env.Run()
		var dl *DeadlockError
		if !errors.As(err, &dl) {
			t.Fatalf("%s: Run() = %v, want DeadlockError", mk.name, err)
		}
		if len(dl.Parked) != 1 || dl.Parked[0] != "stuck" {
			t.Fatalf("%s: parked = %v, want [stuck]", mk.name, dl.Parked)
		}
		if !strings.Contains(dl.Error(), "stuck") {
			t.Fatalf("%s: error text %q does not name the process", mk.name, dl.Error())
		}
	}
}

// TestSyncAccessors covers the small inspection surface of the sync
// primitives and the process accessors.
func TestSyncAccessors(t *testing.T) {
	env := NewEnv()
	var mu Mutex
	var c Cond
	sem := NewSemaphore(2)
	ch := NewChan[int](2)
	env.Go("main", func(p *Proc) {
		if p.Name() != "main" {
			t.Errorf("Name() = %q", p.Name())
		}
		p.SetTrace("tag")
		if p.Trace() != "tag" {
			t.Errorf("Trace() = %v", p.Trace())
		}
		acct := &CPUAccount{}
		p.SetCPUAccount(acct)
		if p.CPUAccount() != acct {
			t.Error("CPUAccount() did not round-trip")
		}
		p.Work(time.Microsecond)
		if acct.Busy() != time.Microsecond {
			t.Errorf("Busy() = %v, want 1µs", acct.Busy())
		}
		mu.Lock(p)
		if !mu.Locked() {
			t.Error("Locked() = false with the lock held")
		}
		mu.Unlock(p)
		if mu.Locked() {
			t.Error("Locked() = true after unlock")
		}
		if !sem.TryAcquire(p) || sem.Available() != 1 {
			t.Errorf("TryAcquire/Available = %d, want 1", sem.Available())
		}
		sem.Release(p.Env())
		if !ch.TrySend(p, 7) || ch.Len() != 1 {
			t.Errorf("TrySend/Len = %d, want 1", ch.Len())
		}
		if v, ok := ch.TryRecv(p); !ok || v != 7 {
			t.Errorf("TryRecv = %d, %v", v, ok)
		}
		if ch.Closed() {
			t.Error("Closed() = true before Close")
		}
		ch.Close(p)
		if !ch.Closed() {
			t.Error("Closed() = false after Close")
		}
		env.Go("waiter", func(p *Proc) { c.Wait(p) })
		p.Yield()
		if c.Waiters() != 1 {
			t.Errorf("Waiters() = %d, want 1", c.Waiters())
		}
		c.Signal(p.Env())
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestServerAccessors covers the resource-server inspection surface.
func TestServerAccessors(t *testing.T) {
	env := NewEnv()
	var srv Server
	ms := NewMultiServer(2)
	env.Go("main", func(p *Proc) {
		srv.Process(p, 10*time.Microsecond)
		if srv.FreeAt() != 10*time.Microsecond {
			t.Errorf("FreeAt() = %v, want 10µs", srv.FreeAt())
		}
		if srv.BusyTotal() != 10*time.Microsecond {
			t.Errorf("BusyTotal() = %v, want 10µs", srv.BusyTotal())
		}
		ms.Process(p, 4*time.Microsecond)
		if ms.BusyTotal() != 4*time.Microsecond {
			t.Errorf("MultiServer.BusyTotal() = %v, want 4µs", ms.BusyTotal())
		}
	})
	if err := env.Run(); err != nil {
		t.Fatal(err)
	}
}

// benchTimerChain measures raw scheduler throughput: one process
// sleeping in a tight loop, so every event is a self-wake (the
// continuation-stealing fast path; under the legacy scheduler, a full
// two-handoff park/resume).
func benchTimerChain(b *testing.B, env *Env) {
	env.Go("timer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(100)
		}
	})
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Events())/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkEnvRun(b *testing.B)       { benchTimerChain(b, NewEnv()) }
func BenchmarkEnvRunLegacy(b *testing.B) { benchTimerChain(b, NewLegacyEnv()) }

// benchWakeStorm measures cross-proc wakeups under fan-out: 1024
// processes all sleeping to the same instants, so every round is a
// thundering herd through the same calendar bucket.
func benchWakeStorm(b *testing.B, env *Env) {
	const procs = 1024
	for pi := 0; pi < procs; pi++ {
		env.Go(fmt.Sprintf("w%d", pi), func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.SleepUntil(Time(i+1) * time.Microsecond)
			}
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	if err := env.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(float64(env.Events())/b.Elapsed().Seconds(), "events/s")
}

func BenchmarkWakeStorm(b *testing.B)       { benchWakeStorm(b, NewEnv()) }
func BenchmarkWakeStormLegacy(b *testing.B) { benchWakeStorm(b, NewLegacyEnv()) }
