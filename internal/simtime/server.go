package simtime

import "sort"

// Server models a work-conserving FIFO service facility: each request
// occupies the facility for its service time. It is the building block
// for link bandwidth, NIC processing pipelines, DMA engines, and other
// shared serial resources.
//
// Reservations may be issued out of time order (an operation posted
// now reserves stages of its pipeline at future instants), so the
// facility keeps a list of busy intervals and places each request in
// the earliest gap at or after its arrival — a later-issued request
// arriving earlier in virtual time slots into idle capacity instead of
// queueing behind far-future reservations.
//
// Because the simulation kernel serializes processes, Server needs no
// locking.
type Server struct {
	// busy holds non-overlapping reserved intervals sorted by start.
	busy []interval
	acc  Time // total busy time, for utilization reporting
}

type interval struct {
	start, end Time
}

// maxIntervals bounds the busy list; when exceeded, the oldest
// intervals are coalesced into one (they lie in the past of every
// future reservation in any realistic workload).
const maxIntervals = 1024

// Reserve books a request with service time d arriving at time at and
// returns its completion instant. The request takes the earliest idle
// gap of length d starting at or after at.
func (s *Server) Reserve(at Time, d Time) Time {
	if d < 0 {
		d = 0
	}
	s.acc += d
	if d == 0 {
		// Zero-length requests complete at their queue position
		// without occupying the facility.
		return s.nextFree(at)
	}
	// Find the first interval ending after at.
	i := sort.Search(len(s.busy), func(k int) bool { return s.busy[k].end > at })
	start := at
	for ; i < len(s.busy); i++ {
		if start+d <= s.busy[i].start {
			break // fits in the gap before interval i
		}
		if s.busy[i].end > start {
			start = s.busy[i].end
		}
	}
	s.insert(interval{start, start + d}, i)
	return start + d
}

// nextFree returns the earliest idle instant at or after at.
func (s *Server) nextFree(at Time) Time {
	i := sort.Search(len(s.busy), func(k int) bool { return s.busy[k].end > at })
	t := at
	for ; i < len(s.busy); i++ {
		if t < s.busy[i].start {
			return t
		}
		t = s.busy[i].end
	}
	return t
}

// insert places iv at index i, merging with touching neighbors.
func (s *Server) insert(iv interval, i int) {
	// Merge with predecessor if touching.
	if i > 0 && s.busy[i-1].end == iv.start {
		s.busy[i-1].end = iv.end
		// Merge with successor too if now touching.
		if i < len(s.busy) && s.busy[i-1].end == s.busy[i].start {
			s.busy[i-1].end = s.busy[i].end
			s.busy = append(s.busy[:i], s.busy[i+1:]...)
		}
		return
	}
	if i < len(s.busy) && iv.end == s.busy[i].start {
		s.busy[i].start = iv.start
		return
	}
	s.busy = append(s.busy, interval{})
	copy(s.busy[i+1:], s.busy[i:])
	s.busy[i] = iv
	if len(s.busy) > maxIntervals {
		// Coalesce the oldest half into one block; those gaps are in
		// the distant past of any future arrival.
		keep := len(s.busy) / 2
		s.busy[keep-1].start = s.busy[0].start
		s.busy = append(s.busy[:keep-1], s.busy[keep-1:]...)
		copy(s.busy, s.busy[keep-1:])
		s.busy = s.busy[:len(s.busy)-(keep-1)]
	}
}

// Process enqueues a request with service time d, blocks the caller
// until it completes, and returns the completion time.
func (s *Server) Process(p *Proc, d Time) Time {
	t := s.Reserve(p.Now(), d)
	p.SleepUntil(t)
	return t
}

// FreeAt returns the instant the facility next becomes idle after all
// current reservations.
func (s *Server) FreeAt() Time {
	if len(s.busy) == 0 {
		return 0
	}
	return s.busy[len(s.busy)-1].end
}

// BusyTotal returns the total busy time accumulated by the facility.
func (s *Server) BusyTotal() Time { return s.acc }

// MultiServer models a facility with k parallel servers, such as a
// multi-engine NIC or a pool of DMA channels. Each request goes to the
// server that can complete it earliest.
type MultiServer struct {
	servers []Server
}

// NewMultiServer returns a facility with k parallel servers.
func NewMultiServer(k int) *MultiServer {
	if k < 1 {
		k = 1
	}
	return &MultiServer{servers: make([]Server, k)}
}

// Process enqueues a request with service time d, blocks the caller
// until it completes, and returns the completion time.
func (m *MultiServer) Process(p *Proc, d Time) Time {
	t := m.Reserve(p.Now(), d)
	p.SleepUntil(t)
	return t
}

// Reserve books a request with service time d arriving at time at on
// the server that finishes it earliest and returns that instant.
func (m *MultiServer) Reserve(at Time, d Time) Time {
	best := 0
	var bestDone Time = -1
	for i := range m.servers {
		done := m.servers[i].nextFree(at) + d
		if bestDone < 0 || done < bestDone {
			best, bestDone = i, done
		}
	}
	return m.servers[best].Reserve(at, d)
}

// BusyTotal returns the total busy time accumulated across servers.
func (m *MultiServer) BusyTotal() Time {
	var t Time
	for i := range m.servers {
		t += m.servers[i].BusyTotal()
	}
	return t
}
