package simtime

// waiter records a parked process together with the wait generation it
// parked under, so stale entries (already woken by another source, for
// example a timeout) can be skipped.
type waiter struct {
	p   *Proc
	gen uint64
}

// Mutex is a virtual-time mutual-exclusion lock with FIFO handoff.
// The zero value is an unlocked mutex.
type Mutex struct {
	owner *Proc
	q     []waiter
}

// Lock acquires the mutex, blocking the process in FIFO order if it is
// held. Lock panics on self-deadlock (re-acquiring a held mutex).
func (m *Mutex) Lock(p *Proc) {
	if m.owner == nil {
		m.owner = p
		return
	}
	if m.owner == p {
		panic("simtime: recursive Mutex.Lock by " + p.name)
	}
	gen := p.prepareWait()
	m.q = append(m.q, waiter{p, gen})
	p.park()
	// Ownership was handed to us by Unlock before the wake event fired.
}

// TryLock acquires the mutex if it is free and reports whether it did.
func (m *Mutex) TryLock(p *Proc) bool {
	if m.owner == nil {
		m.owner = p
		return true
	}
	return false
}

// Unlock releases the mutex and hands it to the oldest waiter, if any.
func (m *Mutex) Unlock(p *Proc) {
	if m.owner != p {
		panic("simtime: Mutex.Unlock by non-owner " + p.name)
	}
	m.owner = nil
	for len(m.q) > 0 {
		w := m.q[0]
		m.q = m.q[1:]
		if w.gen != w.p.gen || w.p.done {
			continue
		}
		m.owner = w.p
		p.env.wakeAt(p.env.now, w.p, w.gen, WakeSignal)
		return
	}
}

// Locked reports whether the mutex is currently held.
func (m *Mutex) Locked() bool { return m.owner != nil }

// Cond is a virtual-time condition variable. Unlike sync.Cond it does
// not require an associated mutex: because only one process runs at a
// time, checking the predicate and calling Wait is already atomic.
type Cond struct {
	q []waiter
}

// Wait parks the process until Signal or Broadcast wakes it.
func (c *Cond) Wait(p *Proc) {
	gen := p.prepareWait()
	c.q = append(c.q, waiter{p, gen})
	p.park()
}

// WaitTimeout parks the process until it is signaled or d elapses. It
// reports whether the wake came from a signal (true) rather than the
// timeout (false).
func (c *Cond) WaitTimeout(p *Proc, d Time) bool {
	gen := p.prepareWait()
	c.q = append(c.q, waiter{p, gen})
	p.env.wakeAt(p.env.now+d, p, gen, WakeTimer)
	return p.park() == WakeSignal
}

// Signal wakes the oldest valid waiter, if any, and reports whether a
// process was woken. It may be called from any running process or
// from a scheduler callback (Env.At).
func (c *Cond) Signal(e *Env) bool {
	for len(c.q) > 0 {
		w := c.q[0]
		c.q = c.q[1:]
		if w.gen != w.p.gen || w.p.done {
			continue
		}
		e.wakeAt(e.now, w.p, w.gen, WakeSignal)
		return true
	}
	return false
}

// Broadcast wakes every valid waiter and returns how many were woken.
func (c *Cond) Broadcast(e *Env) int {
	n := 0
	for c.Signal(e) {
		n++
	}
	return n
}

// Waiters returns the number of queued wait records, including stale
// ones that have not yet been skipped. It is intended for diagnostics.
func (c *Cond) Waiters() int { return len(c.q) }

// Semaphore is a counting semaphore in virtual time with FIFO wakeup.
type Semaphore struct {
	n    int
	cond Cond
}

// NewSemaphore returns a semaphore with n initial permits.
func NewSemaphore(n int) *Semaphore { return &Semaphore{n: n} }

// Acquire takes one permit, blocking until one is available.
func (s *Semaphore) Acquire(p *Proc) {
	for s.n == 0 {
		s.cond.Wait(p)
	}
	s.n--
}

// TryAcquire takes a permit without blocking and reports success.
func (s *Semaphore) TryAcquire(p *Proc) bool {
	if s.n == 0 {
		return false
	}
	s.n--
	return true
}

// Release returns one permit and wakes a waiter if any. It may be
// called from a process or a scheduler callback.
func (s *Semaphore) Release(e *Env) {
	s.n++
	s.cond.Signal(e)
}

// Available returns the number of free permits.
func (s *Semaphore) Available() int { return s.n }

// WaitGroup waits for a collection of processes to finish, mirroring
// sync.WaitGroup in virtual time.
type WaitGroup struct {
	n    int
	cond Cond
}

// Add adds delta to the counter. It panics if the counter goes negative.
func (w *WaitGroup) Add(delta int) {
	w.n += delta
	if w.n < 0 {
		panic("simtime: negative WaitGroup counter")
	}
}

// Done decrements the counter by one and wakes waiters at zero. It
// may be called from a process or a scheduler callback.
func (w *WaitGroup) Done(e *Env) {
	w.Add(-1)
	if w.n == 0 {
		w.cond.Broadcast(e)
	}
}

// Wait blocks until the counter reaches zero.
func (w *WaitGroup) Wait(p *Proc) {
	for w.n > 0 {
		w.cond.Wait(p)
	}
}
