package simtime

import (
	"testing"
	"time"
)

func TestMutexMutualExclusion(t *testing.T) {
	e := NewEnv()
	var m Mutex
	inside := 0
	maxInside := 0
	for i := 0; i < 5; i++ {
		e.Go("locker", func(p *Proc) {
			m.Lock(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Microsecond)
			inside--
			m.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 1 {
		t.Fatalf("maxInside = %d, want 1", maxInside)
	}
	if e.Now() != 5*time.Microsecond {
		t.Fatalf("now = %v, want 5µs (serialized critical sections)", e.Now())
	}
}

func TestMutexFIFOHandoff(t *testing.T) {
	e := NewEnv()
	var m Mutex
	var order []int
	e.Go("holder", func(p *Proc) {
		m.Lock(p)
		p.Sleep(10 * time.Microsecond)
		m.Unlock(p)
	})
	for i := 0; i < 4; i++ {
		i := i
		e.Go("waiter", func(p *Proc) {
			p.Sleep(Time(i+1) * time.Microsecond) // stagger arrivals
			m.Lock(p)
			order = append(order, i)
			m.Unlock(p)
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO by arrival", order)
		}
	}
}

func TestMutexTryLock(t *testing.T) {
	e := NewEnv()
	var m Mutex
	e.Go("p", func(p *Proc) {
		if !m.TryLock(p) {
			t.Error("TryLock on free mutex failed")
		}
		if m.TryLock(p) {
			t.Error("TryLock on held mutex succeeded")
		}
		m.Unlock(p)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	e := NewEnv()
	var c Cond
	woken := 0
	for i := 0; i < 3; i++ {
		e.Go("waiter", func(p *Proc) {
			c.Wait(p)
			woken++
		})
	}
	e.Go("signaler", func(p *Proc) {
		p.Sleep(time.Microsecond)
		c.Signal(p.Env())
		p.Sleep(time.Microsecond)
		if woken != 1 {
			t.Errorf("woken = %d after one Signal, want 1", woken)
		}
		c.Broadcast(p.Env())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if woken != 3 {
		t.Fatalf("woken = %d, want 3", woken)
	}
}

func TestCondWaitTimeout(t *testing.T) {
	e := NewEnv()
	var c Cond
	var timedOut, signaled bool
	e.Go("timeouter", func(p *Proc) {
		if got := c.WaitTimeout(p, 2*time.Microsecond); got {
			t.Error("expected timeout, got signal")
		}
		timedOut = true
	})
	e.Go("signaled", func(p *Proc) {
		p.Sleep(3 * time.Microsecond) // start waiting after the first timed out
		if got := c.WaitTimeout(p, 100*time.Microsecond); !got {
			t.Error("expected signal, got timeout")
		}
		signaled = true
	})
	e.Go("signaler", func(p *Proc) {
		p.Sleep(5 * time.Microsecond)
		// The first waiter's stale entry must be skipped.
		c.Signal(p.Env())
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !timedOut || !signaled {
		t.Fatalf("timedOut=%v signaled=%v", timedOut, signaled)
	}
}

func TestSemaphoreLimitsConcurrency(t *testing.T) {
	e := NewEnv()
	s := NewSemaphore(2)
	inside, maxInside := 0, 0
	for i := 0; i < 6; i++ {
		e.Go("w", func(p *Proc) {
			s.Acquire(p)
			inside++
			if inside > maxInside {
				maxInside = inside
			}
			p.Sleep(time.Microsecond)
			inside--
			s.Release(p.Env())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if maxInside != 2 {
		t.Fatalf("maxInside = %d, want 2", maxInside)
	}
	if e.Now() != 3*time.Microsecond {
		t.Fatalf("now = %v, want 3µs (6 jobs, 2 at a time)", e.Now())
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv()
	var wg WaitGroup
	finished := 0
	wg.Add(3)
	for i := 0; i < 3; i++ {
		i := i
		e.Go("w", func(p *Proc) {
			p.Sleep(Time(i+1) * time.Microsecond)
			finished++
			wg.Done(p.Env())
		})
	}
	e.Go("waiter", func(p *Proc) {
		wg.Wait(p)
		if finished != 3 {
			t.Errorf("finished = %d at Wait return, want 3", finished)
		}
		if p.Now() != 3*time.Microsecond {
			t.Errorf("now = %v, want 3µs", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestChanBuffered(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](2)
	var got []int
	e.Go("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			c.Send(p, i)
		}
		c.Close(p)
	})
	e.Go("consumer", func(p *Proc) {
		for {
			v, ok := c.Recv(p)
			if !ok {
				return
			}
			got = append(got, v)
			p.Sleep(time.Microsecond)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 5 {
		t.Fatalf("got %v, want 5 values", got)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want in-order", got)
		}
	}
}

func TestChanRendezvous(t *testing.T) {
	e := NewEnv()
	c := NewChan[string](0)
	var sendDone, recvVal Time
	e.Go("sender", func(p *Proc) {
		c.Send(p, "hi")
		sendDone = p.Now()
	})
	e.Go("receiver", func(p *Proc) {
		p.Sleep(7 * time.Microsecond)
		v, ok := c.Recv(p)
		if !ok || v != "hi" {
			t.Errorf("recv = %q, %v", v, ok)
		}
		recvVal = p.Now()
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sendDone != 7*time.Microsecond || recvVal != 7*time.Microsecond {
		t.Fatalf("sendDone=%v recv=%v, want both 7µs (rendezvous)", sendDone, recvVal)
	}
}

func TestChanTryOps(t *testing.T) {
	e := NewEnv()
	c := NewChan[int](1)
	e.Go("p", func(p *Proc) {
		if _, ok := c.TryRecv(p); ok {
			t.Error("TryRecv on empty chan succeeded")
		}
		if !c.TrySend(p, 1) {
			t.Error("TrySend with space failed")
		}
		if c.TrySend(p, 2) {
			t.Error("TrySend on full chan succeeded")
		}
		v, ok := c.TryRecv(p)
		if !ok || v != 1 {
			t.Errorf("TryRecv = %d, %v", v, ok)
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestServerFIFOQueueing(t *testing.T) {
	e := NewEnv()
	var s Server
	var done []Time
	for i := 0; i < 3; i++ {
		e.Go("job", func(p *Proc) {
			s.Process(p, 4*time.Microsecond)
			done = append(done, p.Now())
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []Time{4 * time.Microsecond, 8 * time.Microsecond, 12 * time.Microsecond}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if s.BusyTotal() != 12*time.Microsecond {
		t.Fatalf("busy = %v, want 12µs", s.BusyTotal())
	}
}

func TestServerIdleGap(t *testing.T) {
	e := NewEnv()
	var s Server
	e.Go("a", func(p *Proc) {
		s.Process(p, 2*time.Microsecond)
	})
	e.Go("b", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		s.Process(p, 2*time.Microsecond)
		if p.Now() != 12*time.Microsecond {
			t.Errorf("now = %v, want 12µs (no queueing after idle gap)", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMultiServerParallelism(t *testing.T) {
	e := NewEnv()
	m := NewMultiServer(2)
	var last Time
	for i := 0; i < 4; i++ {
		e.Go("job", func(p *Proc) {
			m.Process(p, 5*time.Microsecond)
			last = p.Now()
		})
	}
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if last != 10*time.Microsecond {
		t.Fatalf("last = %v, want 10µs (4 jobs on 2 servers)", last)
	}
}
