// Package simtime implements a deterministic discrete-event simulation
// kernel with virtual time.
//
// A simulation is driven by an Env. Application code runs inside
// processes (Proc), each backed by a goroutine. The scheduler enforces
// that exactly one process executes at any instant, which makes the
// simulation deterministic and lets process code mutate shared state
// without additional locking: every handoff between processes goes
// through a channel, establishing the necessary happens-before edges.
//
// Virtual time only advances when every process is blocked; it then
// jumps to the earliest pending event. Processes block by sleeping
// (Sleep, SleepUntil), by waiting on virtual synchronization primitives
// (Mutex, Cond, Semaphore, Chan), or by queueing on a Server resource.
//
// Processes marked as daemons (GoDaemon) do not keep the simulation
// alive: Run returns once every non-daemon process has finished, which
// is how long-lived background pollers are modeled.
package simtime

import (
	"container/heap"
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp, measured as a duration since
// the simulation epoch (time zero, when Run starts).
type Time = time.Duration

// WakeReason reports why a parked process resumed.
type WakeReason int

const (
	// WakeTimer indicates the process resumed because a timer it armed
	// (Sleep or a wait timeout) expired.
	WakeTimer WakeReason = iota
	// WakeSignal indicates the process resumed because another process
	// signaled it (cond signal, mutex handoff, channel operation, ...).
	WakeSignal
)

// Env is a discrete-event simulation environment. Create one with
// NewEnv, spawn processes with Go/GoDaemon, then call Run.
type Env struct {
	now     Time
	seq     int64
	evq     eventHeap
	parkCh  chan struct{}
	nextPID int

	live    int // non-daemon procs that have not finished
	procs   map[int]*Proc
	stopped bool
	limit   Time // 0 means no limit
}

type event struct {
	t      Time
	seq    int64
	p      *Proc
	gen    uint64
	reason WakeReason
	fn     func(*Env) // callback event: runs in scheduler context
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// NewEnv returns an empty simulation environment at virtual time zero.
func NewEnv() *Env {
	return &Env{
		parkCh: make(chan struct{}),
		procs:  make(map[int]*Proc),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// SetLimit makes Run stop once virtual time reaches t, even if
// non-daemon processes are still live. A zero limit means no limit.
func (e *Env) SetLimit(t Time) { e.limit = t }

// Proc is a simulated process (thread of execution) inside an Env.
type Proc struct {
	env    *Env
	id     int
	name   string
	resume chan WakeReason
	gen    uint64
	parked bool
	done   bool
	daemon bool

	cpu *CPUAccount

	// trace is an opaque slot for observability context (the active
	// trace span) carried by this process across blocking points.
	// simtime never interprets it; keeping it per-process rather than
	// in a shared registry means two processes interleaving at a
	// blocking point cannot clobber each other's context.
	trace any
}

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// SetTrace installs opaque observability context on the process; it
// travels with the process across blocking points. Pass nil to clear.
func (p *Proc) SetTrace(v any) { p.trace = v }

// Trace returns the context installed by SetTrace, or nil.
func (p *Proc) Trace() any { return p.trace }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process that starts at the current virtual time.
// The simulation (Run) will not finish until fn returns.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon spawns a background process that does not keep the
// simulation alive: Run returns once all non-daemon processes finish,
// abandoning any daemons still blocked or sleeping.
func (e *Env) GoDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e.nextPID++
	p := &Proc{
		env:    e,
		id:     e.nextPID,
		name:   name,
		resume: make(chan WakeReason),
		gen:    1,
		parked: true,
		daemon: daemon,
	}
	e.procs[p.id] = p
	if !daemon {
		e.live++
	}
	go func() {
		r := <-p.resume
		_ = r
		fn(p)
		p.done = true
		p.parked = false
		e.parkCh <- struct{}{}
	}()
	e.wakeAt(e.now, p, p.gen, WakeSignal)
	return p
}

// wakeAt schedules a wakeup for p at time t, provided p is still in
// generation gen when the event fires. Stale events are skipped.
func (e *Env) wakeAt(t Time, p *Proc, gen uint64, reason WakeReason) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.evq, &event{t: t, seq: e.seq, p: p, gen: gen, reason: reason})
}

// At schedules fn to run at virtual time t (or now, if t is in the
// past). The callback executes in scheduler context while every
// process is parked: it may mutate shared state and wake processes
// (for example via Cond.Signal), but it must not block. Callbacks are
// used to model asynchronous hardware activity such as NIC delivery.
func (e *Env) At(t Time, fn func(*Env)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	heap.Push(&e.evq, &event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now; see At.
func (e *Env) After(d Time, fn func(*Env)) { e.At(e.now+d, fn) }

// prepareWait opens a new wait generation for p and returns it. Any
// wake source armed for this wait must capture the returned generation.
func (p *Proc) prepareWait() uint64 {
	p.gen++
	return p.gen
}

// park blocks the calling process until a wake event for its current
// generation fires, and returns the reason for the wakeup.
func (p *Proc) park() WakeReason {
	p.parked = true
	p.env.parkCh <- struct{}{}
	return <-p.resume
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.env.now + d)
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	gen := p.prepareWait()
	p.env.wakeAt(t, p, gen, WakeTimer)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// process with a pending event at this instant run first.
func (p *Proc) Yield() {
	gen := p.prepareWait()
	p.env.wakeAt(p.env.now, p, gen, WakeTimer)
	p.park()
}

// DeadlockError reports that the simulation stalled: live non-daemon
// processes remain but no event can wake any process.
type DeadlockError struct {
	// Parked lists the names of processes that were still blocked.
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock with %d parked process(es): %v", len(e.Parked), e.Parked)
}

// Run executes the simulation until all non-daemon processes finish,
// the time limit (if set) is reached, or no progress is possible. It
// returns a *DeadlockError in the latter case and nil otherwise.
func (e *Env) Run() error {
	for {
		if e.live == 0 {
			return nil
		}
		var ev *event
		for e.evq.Len() > 0 {
			c := heap.Pop(&e.evq).(*event)
			if c.fn != nil {
				if e.limit > 0 && c.t > e.limit {
					return nil
				}
				if c.t > e.now {
					e.now = c.t
				}
				c.fn(e)
				continue
			}
			if c.gen == c.p.gen && c.p.parked && !c.p.done {
				ev = c
				break
			}
		}
		if ev == nil {
			return e.deadlock()
		}
		if e.limit > 0 && ev.t > e.limit {
			return nil
		}
		if ev.t > e.now {
			e.now = ev.t
		}
		ev.p.parked = false
		ev.p.resume <- ev.reason
		<-e.parkCh
		if ev.p.done {
			delete(e.procs, ev.p.id)
			if !ev.p.daemon {
				e.live--
			}
		}
	}
}

func (e *Env) deadlock() error {
	var parked []string
	for _, p := range e.procs {
		if p.parked && !p.done && !p.daemon {
			parked = append(parked, p.name)
		}
	}
	sort.Strings(parked)
	return &DeadlockError{Parked: parked}
}

// CPUAccount accumulates the busy CPU time charged by one or more
// processes. It is used to reproduce the paper's CPU-utilization
// comparisons: real work and busy-polling are charged, blocking sleep
// is not.
type CPUAccount struct {
	busy Time
}

// Busy returns the accumulated busy CPU time.
func (a *CPUAccount) Busy() Time {
	if a == nil {
		return 0
	}
	return a.busy
}

// Charge adds d of busy time to the account.
func (a *CPUAccount) Charge(d Time) {
	if a != nil && d > 0 {
		a.busy += d
	}
}

// SetCPUAccount attaches an account to the process; subsequent Work
// calls (and busy-waits that the caller charges) accrue to it.
func (p *Proc) SetCPUAccount(a *CPUAccount) { p.cpu = a }

// CPUAccount returns the account attached to the process, or nil.
func (p *Proc) CPUAccount() *CPUAccount { return p.cpu }

// Work advances virtual time by d and charges d of busy CPU time to
// the process's account. Use it for computation, memory copies, and
// any activity that occupies a core; use Sleep for idle waiting.
func (p *Proc) Work(d Time) {
	if d < 0 {
		d = 0
	}
	p.cpu.Charge(d)
	p.Sleep(d)
}
