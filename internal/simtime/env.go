// Package simtime implements a deterministic discrete-event simulation
// kernel with virtual time.
//
// A simulation is driven by an Env. Application code runs inside
// processes (Proc), each backed by a goroutine. The scheduler enforces
// that exactly one process executes at any instant, which makes the
// simulation deterministic and lets process code mutate shared state
// without additional locking: every handoff between processes goes
// through a channel, establishing the necessary happens-before edges.
//
// Virtual time only advances when every process is blocked; it then
// jumps to the earliest pending event. Processes block by sleeping
// (Sleep, SleepUntil), by waiting on virtual synchronization primitives
// (Mutex, Cond, Semaphore, Chan), or by queueing on a Server resource.
//
// Processes marked as daemons (GoDaemon) do not keep the simulation
// alive: Run returns once every non-daemon process has finished, which
// is how long-lived background pollers are modeled.
//
// # Scheduling
//
// Events live in a calendar queue (see calq.go) and are dispatched in
// strictly nondecreasing (time, sequence) order; two events at the same
// instant run in the order they were scheduled. That total order is the
// determinism contract: it is independent of host speed, GOMAXPROCS,
// and scheduler implementation, so a seeded run replays bit-identically
// anywhere.
//
// The event loop itself is continuation-stealing: there is no dedicated
// scheduler goroutine. Whichever process parks runs the dispatch loop
// inline (sched). If the next event wakes the parking process itself —
// the overwhelmingly common case for timer-driven code such as NIC
// pipeline stages and poller ticks — park returns without touching a
// channel at all. Waking a different process costs exactly one channel
// send (the resume handoff), down from the legacy scheduler's two
// (park-notify plus resume). The legacy binary-heap scheduler is kept
// in legacy.go as the baseline the `scale` benchmark measures against.
package simtime

import (
	"fmt"
	"sort"
	"time"
)

// Time is an absolute virtual timestamp, measured as a duration since
// the simulation epoch (time zero, when Run starts).
type Time = time.Duration

// WakeReason reports why a parked process resumed.
type WakeReason int

const (
	// WakeTimer indicates the process resumed because a timer it armed
	// (Sleep or a wait timeout) expired.
	WakeTimer WakeReason = iota
	// WakeSignal indicates the process resumed because another process
	// signaled it (cond signal, mutex handoff, channel operation, ...).
	WakeSignal
)

// Env is a discrete-event simulation environment. Create one with
// NewEnv, spawn processes with Go/GoDaemon, then call Run.
type Env struct {
	now     Time
	seq     int64
	q       calq
	nextPID int
	events  int64

	// doneCh carries Run's result from whichever goroutine ends the
	// run (buffered so the ender never blocks).
	doneCh chan error

	// legacy selects the original binary-heap, two-handoff scheduler
	// (see legacy.go); evq and parkCh are used only in that mode.
	legacy bool
	evq    eventHeap
	parkCh chan struct{}

	live  int // non-daemon procs that have not finished
	procs map[int]*Proc
	limit Time // 0 means no limit
}

// event is a pending wakeup or callback. Events are stored by value
// inside the calendar queue's buckets, so scheduling allocates nothing
// in steady state.
type event struct {
	t      Time
	seq    int64
	p      *Proc
	gen    uint64
	reason WakeReason
	fn     func(*Env) // callback event: runs in scheduler context
}

// NewEnv returns an empty simulation environment at virtual time zero.
func NewEnv() *Env {
	return &Env{
		procs:  make(map[int]*Proc),
		doneCh: make(chan error, 1),
	}
}

// Now returns the current virtual time.
func (e *Env) Now() Time { return e.now }

// Events returns the number of events dispatched so far: process
// wakeups delivered plus callbacks run. Stale (superseded) wakeups are
// not counted. For a given workload the count is deterministic and
// identical under both schedulers, which makes it the denominator for
// the events-per-second figure the `scale` benchmark reports.
func (e *Env) Events() int64 { return e.events }

// SetLimit makes Run stop once virtual time reaches t, even if
// non-daemon processes are still live. A zero limit means no limit.
func (e *Env) SetLimit(t Time) { e.limit = t }

// Proc is a simulated process (thread of execution) inside an Env.
type Proc struct {
	env    *Env
	id     int
	name   string
	resume chan WakeReason
	gen    uint64
	parked bool
	done   bool
	daemon bool

	cpu *CPUAccount

	// trace is an opaque slot for observability context (the active
	// trace span) carried by this process across blocking points.
	// simtime never interprets it; keeping it per-process rather than
	// in a shared registry means two processes interleaving at a
	// blocking point cannot clobber each other's context.
	trace any
}

// Env returns the environment this process belongs to.
func (p *Proc) Env() *Env { return p.env }

// Name returns the process's diagnostic name.
func (p *Proc) Name() string { return p.name }

// SetTrace installs opaque observability context on the process; it
// travels with the process across blocking points. Pass nil to clear.
func (p *Proc) SetTrace(v any) { p.trace = v }

// Trace returns the context installed by SetTrace, or nil.
func (p *Proc) Trace() any { return p.trace }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns a new process that starts at the current virtual time.
// The simulation (Run) will not finish until fn returns.
func (e *Env) Go(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, false)
}

// GoDaemon spawns a background process that does not keep the
// simulation alive: Run returns once all non-daemon processes finish,
// abandoning any daemons still blocked or sleeping.
func (e *Env) GoDaemon(name string, fn func(*Proc)) *Proc {
	return e.spawn(name, fn, true)
}

func (e *Env) spawn(name string, fn func(*Proc), daemon bool) *Proc {
	e.nextPID++
	p := &Proc{
		env:    e,
		id:     e.nextPID,
		name:   name,
		resume: make(chan WakeReason),
		gen:    1,
		parked: true,
		daemon: daemon,
	}
	e.procs[p.id] = p
	if !daemon {
		e.live++
	}
	go func() {
		<-p.resume
		fn(p)
		p.done = true
		p.parked = false
		if e.legacy {
			e.parkCh <- struct{}{}
			return
		}
		// The finished process is the active goroutine: retire it and
		// keep driving the event loop until the next handoff.
		delete(e.procs, p.id)
		if !p.daemon {
			e.live--
		}
		e.sched(nil)
	}()
	e.wakeAt(e.now, p, p.gen, WakeSignal)
	return p
}

// wakeAt schedules a wakeup for p at time t, provided p is still in
// generation gen when the event fires. Stale events are skipped.
func (e *Env) wakeAt(t Time, p *Proc, gen uint64, reason WakeReason) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	if e.legacy {
		e.evq.push(&event{t: t, seq: e.seq, p: p, gen: gen, reason: reason})
		return
	}
	e.q.push(e.now, event{t: t, seq: e.seq, p: p, gen: gen, reason: reason})
}

// At schedules fn to run at virtual time t (or now, if t is in the
// past). The callback executes in scheduler context while every
// process is parked: it may mutate shared state and wake processes
// (for example via Cond.Signal), but it must not block. Callbacks are
// used to model asynchronous hardware activity such as NIC delivery.
func (e *Env) At(t Time, fn func(*Env)) {
	if t < e.now {
		t = e.now
	}
	e.seq++
	if e.legacy {
		e.evq.push(&event{t: t, seq: e.seq, fn: fn})
		return
	}
	e.q.push(e.now, event{t: t, seq: e.seq, fn: fn})
}

// After schedules fn to run d from now; see At.
func (e *Env) After(d Time, fn func(*Env)) { e.At(e.now+d, fn) }

// prepareWait opens a new wait generation for p and returns it. Any
// wake source armed for this wait must capture the returned generation.
func (p *Proc) prepareWait() uint64 {
	p.gen++
	return p.gen
}

// park blocks the calling process until a wake event for its current
// generation fires, and returns the reason for the wakeup.
//
// The parking process first runs the dispatch loop itself: if the next
// event is its own wakeup it simply keeps running (zero channel
// operations); otherwise it hands the scheduler role over with one
// resume send and blocks on its own resume channel.
func (p *Proc) park() WakeReason {
	e := p.env
	p.parked = true
	if e.legacy {
		e.parkCh <- struct{}{}
		return <-p.resume
	}
	if r, ok := e.sched(p); ok {
		return r
	}
	return <-p.resume
}

// sched drains the event queue on the calling goroutine. self is the
// process that just parked (nil when called from Run or a finished
// process's epilogue). It returns (reason, true) when the next wakeup
// is for self. Otherwise it ends by either handing the scheduler role
// to the woken process (one resume send) or completing the run
// (doneCh), and returns ok=false.
func (e *Env) sched(self *Proc) (WakeReason, bool) {
	for {
		if e.live == 0 {
			e.doneCh <- nil
			return 0, false
		}
		ev, ok := e.q.pop(e.now)
		if !ok {
			e.doneCh <- e.deadlock()
			return 0, false
		}
		if ev.fn != nil {
			if e.limit > 0 && ev.t > e.limit {
				e.doneCh <- nil
				return 0, false
			}
			if ev.t > e.now {
				e.now = ev.t
			}
			e.events++
			ev.fn(e)
			continue
		}
		p := ev.p
		if ev.gen != p.gen || !p.parked || p.done {
			// Stale wakeup, superseded by a later prepareWait: skipped
			// without advancing the clock, exactly like the legacy
			// scheduler.
			continue
		}
		if e.limit > 0 && ev.t > e.limit {
			e.doneCh <- nil
			return 0, false
		}
		if ev.t > e.now {
			e.now = ev.t
		}
		e.events++
		p.parked = false
		if p == self {
			return ev.reason, true
		}
		p.resume <- ev.reason
		return 0, false
	}
}

// Sleep suspends the process for virtual duration d.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.SleepUntil(p.env.now + d)
}

// SleepUntil suspends the process until virtual time t.
func (p *Proc) SleepUntil(t Time) {
	gen := p.prepareWait()
	p.env.wakeAt(t, p, gen, WakeTimer)
	p.park()
}

// Yield reschedules the process at the current time, letting any other
// process with a pending event at this instant run first.
func (p *Proc) Yield() {
	gen := p.prepareWait()
	p.env.wakeAt(p.env.now, p, gen, WakeTimer)
	p.park()
}

// DeadlockError reports that the simulation stalled: live non-daemon
// processes remain but no event can wake any process.
type DeadlockError struct {
	// Parked lists the names of processes that were still blocked.
	Parked []string
}

func (e *DeadlockError) Error() string {
	return fmt.Sprintf("simtime: deadlock with %d parked process(es): %v", len(e.Parked), e.Parked)
}

// Run executes the simulation until all non-daemon processes finish,
// the time limit (if set) is reached, or no progress is possible. It
// returns a *DeadlockError in the latter case and nil otherwise.
func (e *Env) Run() error {
	if e.legacy {
		return e.runLegacy()
	}
	e.sched(nil)
	return <-e.doneCh
}

func (e *Env) deadlock() error {
	var parked []string
	for _, p := range e.procs {
		if p.parked && !p.done && !p.daemon {
			parked = append(parked, p.name)
		}
	}
	sort.Strings(parked)
	return &DeadlockError{Parked: parked}
}

// CPUAccount accumulates the busy CPU time charged by one or more
// processes. It is used to reproduce the paper's CPU-utilization
// comparisons: real work and busy-polling are charged, blocking sleep
// is not.
type CPUAccount struct {
	busy Time
}

// Busy returns the accumulated busy CPU time.
func (a *CPUAccount) Busy() Time {
	if a == nil {
		return 0
	}
	return a.busy
}

// Charge adds d of busy time to the account.
func (a *CPUAccount) Charge(d Time) {
	if a != nil && d > 0 {
		a.busy += d
	}
}

// SetCPUAccount attaches an account to the process; subsequent Work
// calls (and busy-waits that the caller charges) accrue to it.
func (p *Proc) SetCPUAccount(a *CPUAccount) { p.cpu = a }

// CPUAccount returns the account attached to the process, or nil.
func (p *Proc) CPUAccount() *CPUAccount { return p.cpu }

// Work advances virtual time by d and charges d of busy CPU time to
// the process's account. Use it for computation, memory copies, and
// any activity that occupies a core; use Sleep for idle waiting.
func (p *Proc) Work(d Time) {
	if d < 0 {
		d = 0
	}
	p.cpu.Charge(d)
	p.Sleep(d)
}
