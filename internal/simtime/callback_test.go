package simtime

import (
	"testing"
	"time"
)

func TestAtCallbackRunsAtTime(t *testing.T) {
	e := NewEnv()
	var fired Time
	e.At(5*time.Microsecond, func(env *Env) { fired = env.Now() })
	e.Go("main", func(p *Proc) { p.Sleep(10 * time.Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 5*time.Microsecond {
		t.Fatalf("fired at %v", fired)
	}
}

func TestAtInThePastFiresNow(t *testing.T) {
	e := NewEnv()
	var fired Time = -1
	e.Go("main", func(p *Proc) {
		p.Sleep(10 * time.Microsecond)
		p.Env().At(3*time.Microsecond, func(env *Env) { fired = env.Now() })
		p.Sleep(time.Microsecond)
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired != 10*time.Microsecond {
		t.Fatalf("past callback fired at %v, want now (10us)", fired)
	}
}

func TestCallbackCanWakeProcess(t *testing.T) {
	e := NewEnv()
	var c Cond
	woken := false
	e.After(4*time.Microsecond, func(env *Env) { c.Signal(env) })
	e.Go("waiter", func(p *Proc) {
		c.Wait(p)
		woken = true
		if p.Now() != 4*time.Microsecond {
			t.Errorf("woken at %v", p.Now())
		}
	})
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !woken {
		t.Fatal("never woken")
	}
}

func TestCallbacksDoNotKeepRunAlive(t *testing.T) {
	e := NewEnv()
	fired := false
	e.At(100*time.Microsecond, func(*Env) { fired = true })
	e.Go("main", func(p *Proc) { p.Sleep(time.Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("callback after the last live process should not run")
	}
	if e.Now() != time.Microsecond {
		t.Fatalf("now = %v", e.Now())
	}
}

func TestCallbackOrderingWithinInstant(t *testing.T) {
	e := NewEnv()
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.At(time.Microsecond, func(*Env) { order = append(order, i) })
	}
	e.Go("main", func(p *Proc) { p.Sleep(2 * time.Microsecond) })
	if err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order = %v, want FIFO by scheduling", order)
		}
	}
}
