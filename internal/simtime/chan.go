package simtime

// Chan is a virtual-time FIFO channel of values of type T. A capacity
// of zero gives rendezvous semantics analogous to an unbuffered Go
// channel; a positive capacity buffers that many values.
type Chan[T any] struct {
	cap    int
	buf    []T
	closed bool

	sendable Cond // signaled when buffer space frees or a receiver arrives
	recvable Cond // signaled when a value arrives or the channel closes

	// For rendezvous (cap == 0): a parked sender's value waits here for
	// a receiver to claim it.
	handoff []handoffEntry[T]
}

type handoffEntry[T any] struct {
	v     T
	taken *bool
	gen   uint64
	p     *Proc
}

// NewChan returns a channel with the given buffer capacity (>= 0).
func NewChan[T any](capacity int) *Chan[T] {
	if capacity < 0 {
		capacity = 0
	}
	return &Chan[T]{cap: capacity}
}

// Len returns the number of buffered values.
func (c *Chan[T]) Len() int { return len(c.buf) }

// Closed reports whether Close has been called.
func (c *Chan[T]) Closed() bool { return c.closed }

// Close closes the channel. Receivers drain any buffered values and
// then observe ok == false. Sending on a closed channel panics.
func (c *Chan[T]) Close(p *Proc) {
	if c.closed {
		panic("simtime: close of closed Chan")
	}
	c.closed = true
	c.recvable.Broadcast(p.env)
	c.sendable.Broadcast(p.env)
}

// Send delivers v, blocking until buffer space or a receiver is
// available. It panics if the channel is closed.
func (c *Chan[T]) Send(p *Proc, v T) {
	if c.closed {
		panic("simtime: send on closed Chan")
	}
	if c.cap > 0 {
		for len(c.buf) >= c.cap {
			c.sendable.Wait(p)
			if c.closed {
				panic("simtime: send on closed Chan")
			}
		}
		c.buf = append(c.buf, v)
		c.recvable.Signal(p.env)
		return
	}
	// Rendezvous: publish the value and wait for a receiver to take it.
	taken := false
	gen := p.prepareWait()
	c.handoff = append(c.handoff, handoffEntry[T]{v: v, taken: &taken, gen: gen, p: p})
	c.recvable.Signal(p.env)
	p.park()
	if !taken {
		panic("simtime: Chan rendezvous sender woken without delivery")
	}
}

// TrySend delivers v without blocking and reports success. On an
// unbuffered channel it succeeds only if a receiver is already parked.
func (c *Chan[T]) TrySend(p *Proc, v T) bool {
	if c.closed {
		panic("simtime: send on closed Chan")
	}
	if c.cap > 0 {
		if len(c.buf) >= c.cap {
			return false
		}
		c.buf = append(c.buf, v)
		c.recvable.Signal(p.env)
		return true
	}
	if c.recvable.Waiters() == 0 {
		return false
	}
	// A receiver is parked: buffer the value transiently; the receiver
	// will claim it from the handoff list.
	taken := false
	c.handoff = append(c.handoff, handoffEntry[T]{v: v, taken: &taken})
	if !c.recvable.Signal(p.env) {
		c.handoff = c.handoff[:len(c.handoff)-1]
		return false
	}
	return true
}

// Recv returns the next value. ok is false if the channel is closed
// and drained.
func (c *Chan[T]) Recv(p *Proc) (v T, ok bool) {
	for {
		if len(c.buf) > 0 {
			v = c.buf[0]
			c.buf = c.buf[1:]
			c.sendable.Signal(p.env)
			return v, true
		}
		if e, found := c.takeHandoff(p); found {
			return e, true
		}
		if c.closed {
			var zero T
			return zero, false
		}
		c.recvable.Wait(p)
	}
}

// TryRecv returns the next value without blocking.
func (c *Chan[T]) TryRecv(p *Proc) (v T, ok bool) {
	if len(c.buf) > 0 {
		v = c.buf[0]
		c.buf = c.buf[1:]
		c.sendable.Signal(p.env)
		return v, true
	}
	if e, found := c.takeHandoff(p); found {
		return e, true
	}
	var zero T
	return zero, false
}

func (c *Chan[T]) takeHandoff(p *Proc) (T, bool) {
	for len(c.handoff) > 0 {
		e := c.handoff[0]
		c.handoff = c.handoff[1:]
		if *e.taken {
			continue
		}
		*e.taken = true
		if e.p != nil {
			// Wake the parked sender; skip if it already timed out.
			if e.gen == e.p.gen && !e.p.done {
				p.env.wakeAt(p.env.now, e.p, e.gen, WakeSignal)
			}
		}
		return e.v, true
	}
	var zero T
	return zero, false
}
