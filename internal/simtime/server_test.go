package simtime

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestReserveGapFilling(t *testing.T) {
	var s Server
	// A far-future reservation must not delay an earlier arrival.
	late := s.Reserve(100*time.Microsecond, 10*time.Microsecond)
	if late != 110*time.Microsecond {
		t.Fatalf("late = %v", late)
	}
	early := s.Reserve(0, 5*time.Microsecond)
	if early != 5*time.Microsecond {
		t.Fatalf("early = %v, want 5us (idle gap before the future block)", early)
	}
	// A request that does not fit the remaining gap queues after the block.
	big := s.Reserve(0, 97*time.Microsecond)
	if big != 110*time.Microsecond+97*time.Microsecond {
		t.Fatalf("big = %v, want to queue behind the future block", big)
	}
}

func TestReserveExactGapFit(t *testing.T) {
	var s Server
	s.Reserve(0, 10*time.Microsecond)                   // [0, 10)
	s.Reserve(20*time.Microsecond, 10*time.Microsecond) // [20, 30)
	mid := s.Reserve(10*time.Microsecond, 10*time.Microsecond)
	if mid != 20*time.Microsecond {
		t.Fatalf("mid = %v, want exact fit in [10, 20)", mid)
	}
	next := s.Reserve(0, time.Microsecond)
	if next != 31*time.Microsecond {
		t.Fatalf("next = %v, want 31us (everything before is merged busy)", next)
	}
}

func TestReserveZeroDuration(t *testing.T) {
	var s Server
	s.Reserve(0, 10*time.Microsecond)
	if got := s.Reserve(5*time.Microsecond, 0); got != 10*time.Microsecond {
		t.Fatalf("zero-length completion = %v, want next idle instant", got)
	}
	if got := s.Reserve(50*time.Microsecond, 0); got != 50*time.Microsecond {
		t.Fatalf("zero-length at idle = %v", got)
	}
}

func TestBusyTotalAccumulates(t *testing.T) {
	var s Server
	s.Reserve(0, 3*time.Microsecond)
	s.Reserve(100, 7*time.Microsecond)
	if s.BusyTotal() != 10*time.Microsecond {
		t.Fatalf("busy = %v", s.BusyTotal())
	}
}

// Property: reservations never overlap and each starts at or after its
// arrival time.
func TestQuickReservationsNeverOverlap(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		var s Server
		type iv struct{ start, end Time }
		var placed []iv
		for i := 0; i < int(n%64)+8; i++ {
			at := Time(rng.Intn(2000)) * time.Nanosecond
			d := Time(rng.Intn(500)+1) * time.Nanosecond
			end := s.Reserve(at, d)
			start := end - d
			if start < at {
				t.Logf("start %v before arrival %v", start, at)
				return false
			}
			for _, p := range placed {
				if start < p.end && p.start < end {
					t.Logf("overlap [%v,%v) vs [%v,%v)", start, end, p.start, p.end)
					return false
				}
			}
			placed = append(placed, iv{start, end})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: the facility is work conserving — with all arrivals at
// time zero, total makespan equals total service time.
func TestQuickWorkConserving(t *testing.T) {
	f := func(ds []uint16) bool {
		if len(ds) == 0 {
			return true
		}
		var s Server
		var total, max Time
		for _, d := range ds {
			dur := Time(d%1000+1) * time.Nanosecond
			total += dur
			if end := s.Reserve(0, dur); end > max {
				max = end
			}
		}
		return max == total
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntervalListBounded(t *testing.T) {
	var s Server
	// Fragment heavily: every other microsecond reserved far apart.
	for i := 0; i < 5000; i++ {
		s.Reserve(Time(2*i)*time.Microsecond, 100*time.Nanosecond)
	}
	if len(s.busy) > maxIntervals {
		t.Fatalf("interval list grew to %d (> %d)", len(s.busy), maxIntervals)
	}
	// Still functional afterwards.
	end := s.Reserve(0, time.Microsecond)
	if end <= 0 {
		t.Fatal("reserve after coalescing failed")
	}
}

func TestMultiServerUsesIdleServer(t *testing.T) {
	m := NewMultiServer(2)
	a := m.Reserve(0, 10*time.Microsecond)
	b := m.Reserve(0, 10*time.Microsecond)
	if a != 10*time.Microsecond || b != 10*time.Microsecond {
		t.Fatalf("a=%v b=%v, want both to run in parallel", a, b)
	}
	c := m.Reserve(0, 10*time.Microsecond)
	if c != 20*time.Microsecond {
		t.Fatalf("c = %v, want queued", c)
	}
}
