package simtime

import "math/bits"

// This file implements the calendar-queue event scheduler: a two-level
// hierarchical timing wheel with a same-instant run queue below it and
// an overflow heap above it. It replaces the binary heap (kept in
// legacy.go as the measured baseline) on the hot path.
//
// The tiers match the workload's bimodal delay distribution:
//
//   - runq: a FIFO ring for events scheduled at exactly the current
//     instant (signals, yields, zero-length sleeps). Pushing and
//     popping are O(1) with no ordering work at all, because seq
//     order and FIFO push order coincide.
//   - L0 wheel: 4096 buckets of 256 ns. One lap covers ~1.05 ms —
//     NIC pipeline stages, link serialization, syscall costs, and
//     almost every RPC-scale timer land here. Buckets are kept
//     sorted (binary-insert; in practice appends, since per-bucket
//     arrival order mostly follows seq order), so popping is O(1).
//   - L1 wheel: 4096 buckets of ~1.05 ms, covering ~4.3 s. Buckets
//     are unsorted; when the clock reaches a bucket it cascades into
//     L0, which sorts on insert. RC timeouts, lease expiries, and
//     heartbeat timers land here.
//   - overflow: a min-heap on (t, seq) for events beyond the L1
//     horizon (rare: multi-second experiment deadlines).
//
// Ordering contract: pop returns events in strictly nondecreasing
// (t, seq) order — exactly the order the legacy binary heap produces —
// so every seeded experiment replays bit-identically.
//
// Invariants:
//
//   - base0 == base1 << l0Bits: the L0 lap is aligned to exactly one
//     L1 bucket, so a cascaded L1 bucket always lands fully inside
//     the fresh L0 lap.
//   - All runq events have t == now (push routes them there only on
//     equality, and now cannot advance past them while they pend).
//   - Whenever base1 advances, overflow events that now fall inside
//     the L1 window are drained into the wheels immediately. Without
//     this, an overflow event could sort after a later-tick event
//     subsequently inserted into L1.
//
// Events are stored by value (48 bytes + closure pointer); buckets,
// the ring, and the heap all retain capacity across laps, so the
// steady state allocates nothing per event.

const (
	l0Shift = 8 // L0 bucket width: 256 ns
	l0Bits  = 12
	l0Count = 1 << l0Bits // 4096 buckets -> one lap is ~1.05 ms
	l0Mask  = l0Count - 1

	l1Shift = l0Shift + l0Bits // L1 bucket width: ~1.05 ms
	l1Bits  = 12
	l1Count = 1 << l1Bits // 4096 buckets -> horizon ~4.3 s
	l1Mask  = l1Count - 1
)

func evless(a, b *event) bool {
	if a.t != b.t {
		return a.t < b.t
	}
	return a.seq < b.seq
}

// evring is a growable FIFO ring of events (power-of-two capacity).
type evring struct {
	ev   []event
	head int
	n    int
}

func (r *evring) push(ev event) {
	if r.n == len(r.ev) {
		r.grow()
	}
	r.ev[(r.head+r.n)&(len(r.ev)-1)] = ev
	r.n++
}

func (r *evring) grow() {
	nc := 16
	if len(r.ev) > 0 {
		nc = len(r.ev) * 2
	}
	ne := make([]event, nc)
	for i := 0; i < r.n; i++ {
		ne[i] = r.ev[(r.head+i)&(len(r.ev)-1)]
	}
	r.ev = ne
	r.head = 0
}

func (r *evring) peek() *event { return &r.ev[r.head] }

func (r *evring) pop() event {
	ev := r.ev[r.head]
	r.ev[r.head] = event{}
	r.head = (r.head + 1) & (len(r.ev) - 1)
	r.n--
	return ev
}

// bucket holds one wheel slot's events. head indexes the first
// unconsumed event; the prefix is cleared lazily so capacity is reused.
type bucket struct {
	ev   []event
	head int
}

// wheel is one tier of the calendar: fixed bucket count with a
// two-level occupancy bitmap (64 words + a summary word) so the next
// occupied bucket is found with three bit scans, never a linear walk.
type wheel struct {
	buckets [l0Count]bucket
	occ     [l0Count / 64]uint64
	summary uint64
	size    int
}

func (w *wheel) mark(idx int) {
	wi := idx >> 6
	w.occ[wi] |= 1 << (idx & 63)
	w.summary |= 1 << wi
}

func (w *wheel) clearBit(idx int) {
	wi := idx >> 6
	w.occ[wi] &^= 1 << (idx & 63)
	if w.occ[wi] == 0 {
		w.summary &^= 1 << wi
	}
}

func (w *wheel) occupied(idx int) bool {
	return w.occ[idx>>6]&(1<<(idx&63)) != 0
}

// next returns the first occupied bucket at or after from, in circular
// order. Occupied buckets all lie within the current lap, and bucket
// indexes that wrap around correspond to absolute ticks the clock has
// already passed (guaranteed empty), so the circular scan yields
// buckets in absolute-tick order. Returns -1 when the wheel is empty.
func (w *wheel) next(from int) int {
	wi := from >> 6
	if word := w.occ[wi] >> (from & 63); word != 0 {
		return from + bits.TrailingZeros64(word)
	}
	if sum := w.summary >> uint(wi+1); sum != 0 {
		wj := wi + 1 + bits.TrailingZeros64(sum)
		return wj<<6 + bits.TrailingZeros64(w.occ[wj])
	}
	if w.summary != 0 {
		wj := bits.TrailingZeros64(w.summary)
		return wj<<6 + bits.TrailingZeros64(w.occ[wj])
	}
	return -1
}

// insertSorted places ev into bucket idx keeping (t, seq) order.
// Arrivals are usually in seq order with correlated times, so the
// common case is a plain append; out-of-order times binary-search.
func (w *wheel) insertSorted(idx int, ev event) {
	b := &w.buckets[idx]
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		w.mark(idx)
	}
	n := len(b.ev)
	if n == b.head || evless(&b.ev[n-1], &ev) {
		b.ev = append(b.ev, ev)
	} else {
		lo, hi := b.head, n
		for lo < hi {
			mid := int(uint(lo+hi) >> 1)
			if evless(&b.ev[mid], &ev) {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		b.ev = append(b.ev, event{})
		copy(b.ev[lo+1:], b.ev[lo:n])
		b.ev[lo] = ev
	}
	w.size++
}

// put appends ev to bucket idx without ordering (L1 buckets sort only
// when they cascade into L0).
func (w *wheel) put(idx int, ev event) {
	b := &w.buckets[idx]
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		w.mark(idx)
	}
	b.ev = append(b.ev, ev)
	w.size++
}

func (w *wheel) popFront(idx int) event {
	b := &w.buckets[idx]
	ev := b.ev[b.head]
	b.ev[b.head] = event{}
	b.head++
	w.size--
	if b.head == len(b.ev) {
		b.ev = b.ev[:0]
		b.head = 0
		w.clearBit(idx)
	}
	return ev
}

// take empties bucket idx, appending its pending events to into.
func (w *wheel) take(idx int, into []event) []event {
	b := &w.buckets[idx]
	into = append(into, b.ev[b.head:]...)
	w.size -= len(b.ev) - b.head
	for i := range b.ev {
		b.ev[i] = event{}
	}
	b.ev = b.ev[:0]
	b.head = 0
	w.clearBit(idx)
	return into
}

// calq is the full calendar queue.
type calq struct {
	runq     evring
	l0, l1   wheel
	base0    int64   // absolute L0 tick of the current L0 lap start
	base1    int64   // absolute L1 tick of the current L1 window start
	overflow []event // min-heap on (t, seq)
	cascade  []event // scratch buffer reused across cascades
	size     int
}

func (q *calq) len() int { return q.size }

// push enqueues ev. wakeAt/At clamp timestamps to now, so ev.t >= now;
// events at exactly now short-circuit into the run queue.
func (q *calq) push(now Time, ev event) {
	q.size++
	if ev.t == now {
		q.runq.push(ev)
		return
	}
	q.place(ev)
}

// place routes a strictly-future event (relative to the wheel bases)
// into L0, L1, or the overflow heap.
func (q *calq) place(ev event) {
	t0 := int64(ev.t) >> l0Shift
	if t0 < q.base0+l0Count {
		q.l0.insertSorted(int(t0&l0Mask), ev)
		return
	}
	if t1 := t0 >> l0Bits; t1 < q.base1+l1Count {
		q.l1.put(int(t1&l1Mask), ev)
		return
	}
	q.heapPush(ev)
}

// pop removes and returns the globally earliest event in (t, seq)
// order, or ok=false when the queue is empty.
func (q *calq) pop(now Time) (event, bool) {
	if q.runq.n > 0 {
		// Same-instant ordering: the only wheel events that can tie
		// the run queue's t == now are in L0's bucket for now's tick.
		// Deliver whichever has the lower seq.
		idx := int((int64(now) >> l0Shift) & l0Mask)
		if q.l0.occupied(idx) {
			b := &q.l0.buckets[idx]
			if h := &b.ev[b.head]; h.t == now && h.seq < q.runq.peek().seq {
				q.size--
				return q.l0.popFront(idx), true
			}
		}
		q.size--
		return q.runq.pop(), true
	}
	for {
		if q.l0.size > 0 {
			start := int64(now) >> l0Shift
			if start < q.base0 {
				start = q.base0
			}
			idx := q.l0.next(int(start & l0Mask))
			q.size--
			return q.l0.popFront(idx), true
		}
		if q.l1.size > 0 {
			idx := q.l1.next(int(q.base1 & l1Mask))
			d := (int64(idx) - q.base1) & l1Mask
			if d == 0 {
				// Ticks equal to base1 route to L0 and ticks equal to
				// base1+l1Count route to overflow, so the bucket at
				// base1's own index must be empty.
				panic("simtime: calendar queue corrupted")
			}
			abs := q.base1 + d
			q.cascade = q.l1.take(idx, q.cascade[:0])
			q.base1 = abs
			q.base0 = abs << l0Bits
			q.drainOverflow()
			for i := range q.cascade {
				ev := q.cascade[i]
				q.l0.insertSorted(int((int64(ev.t)>>l0Shift)&l0Mask), ev)
				q.cascade[i] = event{}
			}
			continue
		}
		if len(q.overflow) > 0 {
			q.base1 = int64(q.overflow[0].t) >> l1Shift
			q.base0 = q.base1 << l0Bits
			q.drainOverflow()
			continue
		}
		return event{}, false
	}
}

// drainOverflow moves every overflow event that now falls inside the
// L1 window into the wheels. Called on every base1 advance (see the
// ordering invariant above).
func (q *calq) drainOverflow() {
	for len(q.overflow) > 0 {
		if int64(q.overflow[0].t)>>l1Shift >= q.base1+l1Count {
			return
		}
		q.place(q.heapPop())
	}
}

func (q *calq) heapPush(ev event) {
	q.overflow = append(q.overflow, ev)
	i := len(q.overflow) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !evless(&q.overflow[i], &q.overflow[parent]) {
			break
		}
		q.overflow[i], q.overflow[parent] = q.overflow[parent], q.overflow[i]
		i = parent
	}
}

func (q *calq) heapPop() event {
	h := q.overflow
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{}
	q.overflow = h[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		m := l
		if r := l + 1; r < n && evless(&h[r], &h[l]) {
			m = r
		}
		if !evless(&h[m], &h[i]) {
			break
		}
		h[i], h[m] = h[m], h[i]
		i = m
	}
	return top
}
