package fabric

import (
	"sort"
	"testing"

	"lite/internal/params"
	"lite/internal/simtime"
)

// newIncastClos builds a 12-node, 4-hosts-per-leaf fabric with 4:1
// oversubscribed uplinks, so a fan-in onto one host is fabric-bound.
func newIncastClos(t *testing.T, spines int) (*Fabric, *params.Config) {
	t.Helper()
	cfg := params.Default()
	cfg.ClosLeafNodes = 4
	cfg.ClosSpines = spines
	cfg.ClosUplinkBandwidth = cfg.LinkBandwidth / 4
	f := New(&cfg)
	for i := 0; i < 12; i++ {
		if err := f.AddPort(i); err != nil {
			t.Fatal(err)
		}
	}
	return f, &cfg
}

// incastSenders are the eight cross-leaf sources (leaves 1 and 2)
// fanning in on the victim, node 0 on leaf 0.
var incastSenders = []int{4, 5, 6, 7, 8, 9, 10, 11}

const incastVictim = 0

// TestDownlinkIncastSerializes pins the incast occupancy model on a
// single-spine fabric, where the victim leaf has exactly one downlink:
// eight senders released at the same instant must complete spaced by
// exactly one uplink-rate serialization time (the downlink is an
// occupancy server draining one flow at a time), DownlinkBusy must
// account for all eight, and the downlink busy time must dominate the
// victim's NIC ingress busy time — the fabric, not the NIC, is the
// measured bottleneck.
func TestDownlinkIncastSerializes(t *testing.T) {
	f, cfg := newIncastClos(t, 1)
	size := int64(1 << 20)
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	serUp := params.TransferTime(size, cfg.ClosUplinkBandwidth)

	var dones []simtime.Time
	for _, src := range incastSenders {
		if spine := f.SpineFor(src, incastVictim); spine != 0 {
			t.Fatalf("SpineFor(%d, victim) = %d, want 0", src, spine)
		}
		done, ok := f.ReservePath(0, src, incastVictim, size)
		if !ok {
			t.Fatalf("sender %d unreachable", src)
		}
		dones = append(dones, done)
	}
	sort.Slice(dones, func(a, b int) bool { return dones[a] < dones[b] })
	for k := 1; k < len(dones); k++ {
		if gap := dones[k] - dones[k-1]; gap != serUp {
			t.Errorf("completion gap %d->%d = %v, want %v (downlink must serialize)", k-1, k, gap, serUp)
		}
	}

	down := f.DownlinkBusy(0, f.LeafOf(incastVictim))
	if want := simtime.Time(len(incastSenders)) * serUp; down != want {
		t.Errorf("DownlinkBusy = %v, want %v (%d flows x %v)", down, want, len(incastSenders), serUp)
	}
	ingress := f.IngressBusy(incastVictim)
	if want := simtime.Time(len(incastSenders)) * ser; ingress != want {
		t.Errorf("IngressBusy(victim) = %v, want %v", ingress, want)
	}
	// The NIC drains at LinkBandwidth while the downlink feeds it at a
	// quarter of that: fabric occupancy must dominate.
	if down <= ingress {
		t.Errorf("downlink busy %v <= NIC ingress busy %v: incast is not fabric-bound", down, ingress)
	}
}

// TestIncastBusyAccounting spreads the same fan-in over two spines and
// checks the probes' bookkeeping: every flow is serialized exactly once
// on its source leaf's uplink and once on the victim leaf's downlink,
// per (leaf, spine) pair, with nothing lost and nothing double-counted.
func TestIncastBusyAccounting(t *testing.T) {
	f, cfg := newIncastClos(t, 2)
	size := int64(1 << 20)
	serUp := params.TransferTime(size, cfg.ClosUplinkBandwidth)

	downFlows := make(map[int]int)  // spine -> flows through its victim-leaf downlink
	upFlows := make(map[[2]int]int) // (srcLeaf, spine) -> flow count
	for _, src := range incastSenders {
		spine := f.SpineFor(src, incastVictim)
		if spine < 0 || spine > 1 {
			t.Fatalf("SpineFor(%d, victim) = %d, out of range", src, spine)
		}
		if _, ok := f.ReservePath(0, src, incastVictim, size); !ok {
			t.Fatalf("sender %d unreachable", src)
		}
		downFlows[spine]++
		upFlows[[2]int{f.LeafOf(src), spine}]++
	}

	var downBusy, upBusy simtime.Time
	for spine, n := range downFlows {
		want := simtime.Time(n) * serUp
		if got := f.DownlinkBusy(spine, f.LeafOf(incastVictim)); got != want {
			t.Errorf("DownlinkBusy(spine %d) = %v, want %v (%d flows)", spine, got, want, n)
		}
		downBusy += want
	}
	for ls, n := range upFlows {
		want := simtime.Time(n) * serUp
		if got := f.UplinkBusy(ls[0], ls[1]); got != want {
			t.Errorf("UplinkBusy(leaf %d, spine %d) = %v, want %v", ls[0], ls[1], got, want)
		}
		upBusy += want
	}
	if upBusy != downBusy {
		t.Errorf("uplink busy %v != downlink busy %v: a flow crossed only one tier", upBusy, downBusy)
	}

	// Idle links report zero; out-of-range probes are harmless.
	if f.DownlinkBusy(0, 2) != 0 || f.DownlinkBusy(1, 2) != 0 {
		t.Error("downlink toward a leaf that received nothing reports busy time")
	}
	if f.UplinkBusy(-1, 0) != 0 || f.DownlinkBusy(0, 99) != 0 || f.UplinkBusy(0, 99) != 0 {
		t.Error("out-of-range busy probe returned nonzero")
	}
}
