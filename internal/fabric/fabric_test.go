package fabric

import (
	"testing"
	"time"

	"lite/internal/params"
	"lite/internal/simtime"
)

func newFab(t *testing.T) (*Fabric, *params.Config) {
	t.Helper()
	cfg := params.Default()
	f := New(&cfg)
	for i := 0; i < 4; i++ {
		if err := f.AddPort(i); err != nil {
			t.Fatal(err)
		}
	}
	return f, &cfg
}

func TestDuplicatePort(t *testing.T) {
	f, _ := newFab(t)
	if err := f.AddPort(0); err == nil {
		t.Fatal("expected error adding duplicate port")
	}
}

func TestUncontendedLatency(t *testing.T) {
	f, cfg := newFab(t)
	size := int64(4096)
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	done, ok := f.ReservePath(0, 0, 1, size)
	if !ok {
		t.Fatal("unreachable")
	}
	want := ser + cfg.PropagationDelay + cfg.SwitchDelay
	if done != want {
		t.Fatalf("done = %v, want %v (single serialization, cut-through)", done, want)
	}
}

func TestLoopbackIsFree(t *testing.T) {
	f, _ := newFab(t)
	done, ok := f.ReservePath(77*time.Microsecond, 2, 2, 1<<20)
	if !ok || done != 77*time.Microsecond {
		t.Fatalf("loopback done = %v ok=%v", done, ok)
	}
}

func TestEgressContentionQueues(t *testing.T) {
	f, cfg := newFab(t)
	size := int64(1 << 20)
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	d1, _ := f.ReservePath(0, 0, 1, size)
	d2, _ := f.ReservePath(0, 0, 2, size) // same source, different dest
	if d2-d1 != ser {
		t.Fatalf("second message finished %v after first, want %v (egress serialized)", d2-d1, ser)
	}
}

func TestIncastContentionQueues(t *testing.T) {
	f, cfg := newFab(t)
	size := int64(1 << 20)
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	d1, _ := f.ReservePath(0, 0, 3, size)
	d2, _ := f.ReservePath(0, 1, 3, size) // different source, same dest
	if d2-d1 != ser {
		t.Fatalf("incast second finished %v after first, want %v (ingress serialized)", d2-d1, ser)
	}
}

func TestDisjointPairsDoNotContend(t *testing.T) {
	f, _ := newFab(t)
	size := int64(1 << 20)
	d1, _ := f.ReservePath(0, 0, 1, size)
	d2, _ := f.ReservePath(0, 2, 3, size)
	if d1 != d2 {
		t.Fatalf("disjoint transfers finished at %v and %v, want equal", d1, d2)
	}
}

func TestLinkDown(t *testing.T) {
	f, _ := newFab(t)
	f.SetLinkDown(0, 1)
	if _, ok := f.ReservePath(0, 0, 1, 64); ok {
		t.Fatal("delivery succeeded on down link")
	}
	// Direction matters.
	if _, ok := f.ReservePath(0, 1, 0, 64); !ok {
		t.Fatal("reverse direction should be up")
	}
	f.SetLinkUp(0, 1)
	if _, ok := f.ReservePath(0, 0, 1, 64); !ok {
		t.Fatal("delivery failed after SetLinkUp")
	}
}

func TestUnknownPortUnreachable(t *testing.T) {
	f, _ := newFab(t)
	if f.Reachable(0, 99) || f.Reachable(99, 0) {
		t.Fatal("unknown port reported reachable")
	}
}

func TestBandwidthSaturation(t *testing.T) {
	// Pushing N MB through one egress takes N MB / linkBW.
	f, cfg := newFab(t)
	const n = 16
	size := int64(1 << 20)
	var last simtime.Time
	for i := 0; i < n; i++ {
		d, _ := f.ReservePath(0, 0, 1, size)
		last = d
	}
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	want := n*ser + cfg.PropagationDelay + cfg.SwitchDelay
	if last != want {
		t.Fatalf("last = %v, want %v", last, want)
	}
	if got := f.EgressBusy(0); got != n*ser {
		t.Fatalf("egress busy = %v", got)
	}
}
