// Package fabric simulates a single-switch network fabric (the paper's
// 40 Gbps Mellanox InfiniBand switch) connecting a cluster of nodes.
//
// The fabric is a pure timing facility: it owns the per-node egress and
// ingress link occupancies and computes, for a message of a given size
// posted at a given instant, when its last byte is available at the
// destination port. The NIC layers (rnic, tcpip) decide what happens at
// delivery. Links are cut-through: a message's serialization delay is
// paid once, while both the egress and ingress links are occupied for
// the serialization duration (so incast and outcast contention both
// queue correctly).
package fabric

import (
	"fmt"

	"lite/internal/params"
	"lite/internal/simtime"
)

// Fabric is a single-switch network connecting numbered ports.
type Fabric struct {
	cfg   *params.Config
	ports map[int]*port
	// down records unreachable directed pairs for failure injection.
	down map[[2]int]bool
}

type port struct {
	egress  simtime.Server
	ingress simtime.Server
}

// New returns a fabric using the given cost model.
func New(cfg *params.Config) *Fabric {
	return &Fabric{
		cfg:   cfg,
		ports: make(map[int]*port),
		down:  make(map[[2]int]bool),
	}
}

// AddPort registers a node's port. Adding an existing port is an error.
func (f *Fabric) AddPort(node int) error {
	if _, ok := f.ports[node]; ok {
		return fmt.Errorf("fabric: port %d already exists", node)
	}
	f.ports[node] = &port{}
	return nil
}

// SetLinkDown makes messages from src to dst undeliverable (in that
// direction only) until SetLinkUp. Used for failure injection.
func (f *Fabric) SetLinkDown(src, dst int) { f.down[[2]int{src, dst}] = true }

// SetLinkUp restores delivery from src to dst.
func (f *Fabric) SetLinkUp(src, dst int) { delete(f.down, [2]int{src, dst}) }

// Reachable reports whether src can currently reach dst.
func (f *Fabric) Reachable(src, dst int) bool {
	if _, ok := f.ports[src]; !ok {
		return false
	}
	if _, ok := f.ports[dst]; !ok {
		return false
	}
	return !f.down[[2]int{src, dst}]
}

// ReservePath books transmission of size bytes from src to dst with
// the message ready to transmit at time at, and returns the instant the
// last byte has arrived at dst's port. It returns ok=false if the path
// is unreachable, in which case the message must be considered lost.
//
// Loopback (src == dst) bypasses the wire entirely and costs only the
// switch-free local turnaround (zero; NIC pipelines still apply).
func (f *Fabric) ReservePath(at simtime.Time, src, dst int, size int64) (simtime.Time, bool) {
	if !f.Reachable(src, dst) {
		return 0, false
	}
	if src == dst {
		return at, true
	}
	sp := f.ports[src]
	dp := f.ports[dst]
	ser := params.TransferTime(size, f.cfg.LinkBandwidth)
	egressDone := sp.egress.Reserve(at, ser)
	// Cut-through: the head of the message reaches the destination
	// propagation+switch after it starts leaving the source; the
	// ingress link is then occupied for one serialization time.
	headArrive := egressDone - ser + f.cfg.PropagationDelay + f.cfg.SwitchDelay
	return dp.ingress.Reserve(headArrive, ser), true
}

// EgressBusy returns the total busy time of a node's egress link, for
// utilization reporting.
func (f *Fabric) EgressBusy(node int) simtime.Time {
	if p, ok := f.ports[node]; ok {
		return p.egress.BusyTotal()
	}
	return 0
}

// Ports returns the number of registered ports.
func (f *Fabric) Ports() int { return len(f.ports) }
