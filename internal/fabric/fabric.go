// Package fabric simulates the network fabric connecting a cluster of
// nodes: either a single non-blocking switch (the paper's 40 Gbps
// Mellanox InfiniBand box, and the default) or an oversubscribed
// two-tier leaf/spine Clos for datacenter-scale experiments.
//
// The fabric is a pure timing facility: it owns the per-node egress and
// ingress link occupancies (and, in Clos mode, the per-uplink
// occupancies) and computes, for a message of a given size posted at a
// given instant, when its last byte is available at the destination
// port. The NIC layers (rnic, tcpip) decide what happens at delivery.
// Links are cut-through: a message's serialization delay is paid once,
// while every link it crosses is occupied for one serialization time
// (so incast, outcast, and uplink contention all queue correctly).
//
// Clos mode is selected by params.Config.ClosLeafNodes > 0: nodes are
// assigned to leaves in contiguous blocks (leaf = node / ClosLeafNodes),
// same-leaf traffic switches at the leaf exactly like the single-switch
// model, and cross-leaf traffic additionally crosses one of ClosSpines
// uplink/downlink pairs chosen by deterministic flow-keyed ECMP
// (detrand hash of src, dst, and the ECMP seed). The single-switch
// model is the degenerate config: with ClosLeafNodes == 0 every path
// takes exactly the original code path and formula.
package fabric

import (
	"fmt"

	"lite/internal/detrand"
	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

// denseLimit bounds the node-id range backed by dense slices; ids at
// or above it (or negative) fall back to map storage. Cluster node ids
// are contiguous from zero, so the per-message hot path never touches
// a map.
const denseLimit = 1 << 16

// Fabric is a simulated network connecting numbered ports.
//
// Observability note: every method of obs.Registry is safe on a nil
// receiver (the zero-cost disabled path), so fabric code calls f.reg
// unguarded rather than wrapping each call in a nil check.
type Fabric struct {
	cfg *params.Config

	// Hot-path state is indexed by node id in dense slices for ids in
	// [0, denseLimit); the maps only ever hold sparse ids.
	ports  []*port
	portsM map[int]*port

	// down records unreachable directed pairs for failure injection:
	// lazily allocated per-source rows, plus a count so the reachable
	// fast path skips the lookup entirely when no cut is installed.
	down      [][]bool
	downM     map[[2]int]bool
	downCount int

	// nodeDown records whole nodes cut from the fabric (both
	// directions of every pair), as when a machine loses power.
	nodeDown      []bool
	nodeDownM     map[int]bool
	nodeDownCount int

	// nodeDelay is extra one-way latency added to any message that
	// touches the node, modeling a degraded ("slow") machine.
	nodeDelay      []simtime.Time
	nodeDelayM     map[int]simtime.Time
	nodeDelayCount int

	// dropHook, when set, is consulted for every otherwise-reachable
	// message; returning true silently drops it. Used for
	// probabilistic loss injection.
	dropHook func(at simtime.Time, src, dst int, size int64) bool
	// reg receives fabric counters ("fabric.msgs", "fabric.bytes",
	// "fabric.dropped", "fabric.clos.remote") and queueing histograms.
	reg *obs.Registry

	// Clos topology (leafNodes == 0 means single switch).
	leafNodes int
	spines    int
	uplinkBW  float64
	ecmpSeed  uint64
	// uplinks[leaf][spine] and downlinks[spine][leaf] are allocated
	// lazily as leaves appear.
	uplinks   [][]*simtime.Server
	downlinks [][]*simtime.Server

	nports int
}

type port struct {
	egress  simtime.Server
	ingress simtime.Server
}

// New returns a fabric using the given cost model.
func New(cfg *params.Config) *Fabric {
	f := &Fabric{cfg: cfg}
	if cfg.ClosLeafNodes > 0 {
		f.leafNodes = cfg.ClosLeafNodes
		f.spines = cfg.ClosSpines
		if f.spines < 1 {
			f.spines = 1
		}
		f.uplinkBW = cfg.ClosUplinkBandwidth
		if f.uplinkBW <= 0 {
			f.uplinkBW = cfg.LinkBandwidth
		}
	}
	return f
}

func (f *Fabric) port(node int) *port {
	if node >= 0 && node < len(f.ports) {
		return f.ports[node]
	}
	return f.portsM[node]
}

// AddPort registers a node's port. Adding an existing port is an error.
func (f *Fabric) AddPort(node int) error {
	if f.port(node) != nil {
		return fmt.Errorf("fabric: port %d already exists", node)
	}
	if node >= 0 && node < denseLimit {
		for len(f.ports) <= node {
			f.ports = append(f.ports, nil)
		}
		f.ports[node] = &port{}
	} else {
		if f.portsM == nil {
			f.portsM = make(map[int]*port)
		}
		f.portsM[node] = &port{}
	}
	f.nports++
	return nil
}

// SetLinkDown makes messages from src to dst undeliverable (in that
// direction only) until SetLinkUp. Used for failure injection.
func (f *Fabric) SetLinkDown(src, dst int) {
	if f.linkCut(src, dst) {
		return
	}
	f.downCount++
	if src >= 0 && src < denseLimit && dst >= 0 && dst < denseLimit {
		if f.down == nil {
			f.down = make([][]bool, len(f.ports))
		}
		for len(f.down) <= src {
			f.down = append(f.down, nil)
		}
		row := f.down[src]
		for len(row) <= dst {
			row = append(row, false)
		}
		f.down[src] = row
		row[dst] = true
		return
	}
	if f.downM == nil {
		f.downM = make(map[[2]int]bool)
	}
	f.downM[[2]int{src, dst}] = true
}

// SetLinkUp restores delivery from src to dst.
func (f *Fabric) SetLinkUp(src, dst int) {
	if !f.linkCut(src, dst) {
		return
	}
	f.downCount--
	if src >= 0 && src < len(f.down) {
		if row := f.down[src]; dst >= 0 && dst < len(row) && row[dst] {
			row[dst] = false
			return
		}
	}
	delete(f.downM, [2]int{src, dst})
}

// linkCut reports whether the directed pair src->dst is cut.
func (f *Fabric) linkCut(src, dst int) bool {
	if f.downCount == 0 {
		return false
	}
	if src >= 0 && src < len(f.down) {
		if row := f.down[src]; dst >= 0 && dst < len(row) {
			return row[dst]
		}
	}
	return f.downM[[2]int{src, dst}]
}

// SetNodeDown cuts a node from the fabric entirely: no message to or
// from it is deliverable until SetNodeUp. This models a machine crash
// (or its top-of-rack port being disabled) without having to
// enumerate directed pairs.
func (f *Fabric) SetNodeDown(node int) {
	if f.NodeDown(node) {
		return
	}
	f.nodeDownCount++
	if node >= 0 && node < denseLimit {
		for len(f.nodeDown) <= node {
			f.nodeDown = append(f.nodeDown, false)
		}
		f.nodeDown[node] = true
		return
	}
	if f.nodeDownM == nil {
		f.nodeDownM = make(map[int]bool)
	}
	f.nodeDownM[node] = true
}

// SetNodeUp restores a node cut by SetNodeDown. Directed link cuts
// installed with SetLinkDown are unaffected.
func (f *Fabric) SetNodeUp(node int) {
	if !f.NodeDown(node) {
		return
	}
	f.nodeDownCount--
	if node >= 0 && node < len(f.nodeDown) && f.nodeDown[node] {
		f.nodeDown[node] = false
		return
	}
	delete(f.nodeDownM, node)
}

// NodeDown reports whether node is currently cut from the fabric.
func (f *Fabric) NodeDown(node int) bool {
	if f.nodeDownCount == 0 {
		return false
	}
	if node >= 0 && node < len(f.nodeDown) {
		return f.nodeDown[node]
	}
	return f.nodeDownM[node]
}

// Partition symmetrically severs every pair crossing the (a, b) cut:
// for each x in a and y in b, both x→y and y→x become undeliverable.
// Nodes appearing in neither group keep full connectivity.
func (f *Fabric) Partition(a, b []int) {
	for _, x := range a {
		for _, y := range b {
			f.SetLinkDown(x, y)
			f.SetLinkDown(y, x)
		}
	}
}

// HealPartition undoes Partition for the same two groups.
func (f *Fabric) HealPartition(a, b []int) {
	for _, x := range a {
		for _, y := range b {
			f.SetLinkUp(x, y)
			f.SetLinkUp(y, x)
		}
	}
}

// SetNodeDelay injects extra one-way latency on every message sent to
// or from node (a "slow node"). A zero duration removes the injection.
func (f *Fabric) SetNodeDelay(node int, d simtime.Time) {
	old := f.delayOf(node)
	if d <= 0 {
		if old != 0 {
			f.nodeDelayCount--
			if node >= 0 && node < len(f.nodeDelay) && f.nodeDelay[node] != 0 {
				f.nodeDelay[node] = 0
			} else {
				delete(f.nodeDelayM, node)
			}
		}
		return
	}
	if old == 0 {
		f.nodeDelayCount++
	}
	if node >= 0 && node < denseLimit {
		for len(f.nodeDelay) <= node {
			f.nodeDelay = append(f.nodeDelay, 0)
		}
		f.nodeDelay[node] = d
		return
	}
	if f.nodeDelayM == nil {
		f.nodeDelayM = make(map[int]simtime.Time)
	}
	f.nodeDelayM[node] = d
}

// delayOf returns the injected one-way latency for node, or zero.
func (f *Fabric) delayOf(node int) simtime.Time {
	if f.nodeDelayCount == 0 {
		return 0
	}
	if node >= 0 && node < len(f.nodeDelay) {
		return f.nodeDelay[node]
	}
	return f.nodeDelayM[node]
}

// SetDropHook installs a predicate consulted for every reachable
// message; returning true drops the message as if the path were down.
// Pass nil to remove. Fault injectors use it for seeded probabilistic
// loss.
func (f *Fabric) SetDropHook(h func(at simtime.Time, src, dst int, size int64) bool) {
	f.dropHook = h
}

// SetObs directs the fabric's metrics into the given registry
// (typically a cluster domain's global registry, since the fabric is
// shared). A nil registry disables collection — obs.Registry methods
// are nil-safe, so no call site needs a guard.
func (f *Fabric) SetObs(reg *obs.Registry) { f.reg = reg }

// SetECMPSeed sets the seed mixed into the flow-keyed ECMP hash. The
// default of zero is itself deterministic; varying the seed explores
// different (still deterministic) path sets.
func (f *Fabric) SetECMPSeed(seed uint64) { f.ecmpSeed = seed }

// Reachable reports whether src can currently reach dst.
func (f *Fabric) Reachable(src, dst int) bool {
	if f.port(src) == nil || f.port(dst) == nil {
		return false
	}
	if f.nodeDownCount != 0 && (f.NodeDown(src) || f.NodeDown(dst)) {
		return false
	}
	return !f.linkCut(src, dst)
}

// LeafOf returns the leaf switch a node attaches to, or 0 in
// single-switch mode.
func (f *Fabric) LeafOf(node int) int {
	if f.leafNodes <= 0 {
		return 0
	}
	return node / f.leafNodes
}

// SpineFor returns the spine switch the flow src->dst is hashed onto,
// or -1 when the path does not cross the spine layer (single-switch
// mode, loopback, or a same-leaf pair). The choice is a pure function
// of (src, dst, ECMP seed): deterministic and direction-sensitive,
// like hardware ECMP over a flow 5-tuple.
func (f *Fabric) SpineFor(src, dst int) int {
	if f.leafNodes <= 0 || src == dst || src/f.leafNodes == dst/f.leafNodes {
		return -1
	}
	key := f.ecmpSeed ^ uint64(uint32(src))<<32 ^ uint64(uint32(dst))
	return int(detrand.Mix64(key) % uint64(f.spines))
}

// uplink returns the leaf->spine link server, allocating lazily.
func (f *Fabric) uplink(leaf, spine int) *simtime.Server {
	for len(f.uplinks) <= leaf {
		f.uplinks = append(f.uplinks, nil)
	}
	row := f.uplinks[leaf]
	for len(row) <= spine {
		row = append(row, &simtime.Server{})
	}
	f.uplinks[leaf] = row
	return row[spine]
}

// downlink returns the spine->leaf link server, allocating lazily.
func (f *Fabric) downlink(spine, leaf int) *simtime.Server {
	for len(f.downlinks) <= spine {
		f.downlinks = append(f.downlinks, nil)
	}
	row := f.downlinks[spine]
	for len(row) <= leaf {
		row = append(row, &simtime.Server{})
	}
	f.downlinks[spine] = row
	return row[leaf]
}

// ReservePath books transmission of size bytes from src to dst with
// the message ready to transmit at time at, and returns the instant the
// last byte has arrived at dst's port. It returns ok=false if the path
// is unreachable, in which case the message must be considered lost.
//
// Loopback (src == dst) bypasses the wire entirely and costs only the
// switch-free local turnaround (zero; NIC pipelines still apply).
func (f *Fabric) ReservePath(at simtime.Time, src, dst int, size int64) (simtime.Time, bool) {
	if !f.Reachable(src, dst) {
		return 0, false
	}
	if src == dst {
		// Loopback never touches the wire, so probabilistic loss does
		// not apply to it.
		return at, true
	}
	if f.dropHook != nil && f.dropHook(at, src, dst, size) {
		f.reg.Add("fabric.dropped", 1)
		return 0, false
	}
	sp := f.port(src)
	dp := f.port(dst)
	ser := params.TransferTime(size, f.cfg.LinkBandwidth)
	egressDone := sp.egress.Reserve(at, ser)
	// Cut-through: the head of the message reaches the next hop
	// propagation+switch after it starts leaving the source; each link
	// it crosses is then occupied for one serialization time.
	headArrive := egressDone - ser + f.cfg.PropagationDelay + f.cfg.SwitchDelay
	if f.nodeDelayCount != 0 {
		headArrive += f.delayOf(src) + f.delayOf(dst)
	}
	if spine := f.SpineFor(src, dst); spine >= 0 {
		// Cross-leaf: leaf uplink -> spine -> leaf downlink, each hop
		// adding one propagation+switch delay, with the message
		// serialized onto the (possibly slower, oversubscribed)
		// uplinks at ClosUplinkBandwidth.
		serUp := params.TransferTime(size, f.uplinkBW)
		srcLeaf, dstLeaf := src/f.leafNodes, dst/f.leafNodes
		upDone := f.uplink(srcLeaf, spine).Reserve(headArrive, serUp)
		head2 := upDone - serUp + f.cfg.PropagationDelay + f.cfg.SwitchDelay
		dnDone := f.downlink(spine, dstLeaf).Reserve(head2, serUp)
		f.reg.Add("fabric.clos.remote", 1)
		// Spine wait: time queued for the uplink and downlink beyond
		// the flow's own serialization — the oversubscription signal.
		f.reg.Observe("fabric.clos.spine_wait", (upDone-serUp-headArrive)+(dnDone-serUp-head2))
		headArrive = dnDone - serUp + f.cfg.PropagationDelay + f.cfg.SwitchDelay
	}
	done := dp.ingress.Reserve(headArrive, ser)
	f.reg.Add("fabric.msgs", 1)
	f.reg.Add("fabric.bytes", size)
	// Queue wait: time spent waiting behind earlier messages for
	// the egress link, beyond the message's own serialization.
	f.reg.Observe("fabric.queue_wait", egressDone-ser-at)
	f.reg.Observe("fabric.serialize", ser)
	return done, true
}

// EgressBusy returns the total busy time of a node's egress link, for
// utilization reporting.
func (f *Fabric) EgressBusy(node int) simtime.Time {
	if p := f.port(node); p != nil {
		return p.egress.BusyTotal()
	}
	return 0
}

// UplinkBusy returns the total busy time of the leaf->spine uplink,
// for oversubscription reporting. Zero if the link has carried no
// traffic (or in single-switch mode).
func (f *Fabric) UplinkBusy(leaf, spine int) simtime.Time {
	if leaf >= 0 && leaf < len(f.uplinks) {
		if row := f.uplinks[leaf]; spine >= 0 && spine < len(row) {
			return row[spine].BusyTotal()
		}
	}
	return 0
}

// DownlinkBusy returns the total busy time of the spine->leaf
// downlink, for incast reporting: a fan-in onto one leaf serializes on
// its downlinks, so their busy fraction is the bottleneck signal. Zero
// if the link has carried no traffic (or in single-switch mode).
func (f *Fabric) DownlinkBusy(spine, leaf int) simtime.Time {
	if spine >= 0 && spine < len(f.downlinks) {
		if row := f.downlinks[spine]; leaf >= 0 && leaf < len(row) {
			return row[leaf].BusyTotal()
		}
	}
	return 0
}

// IngressBusy returns the total busy time of a node's ingress link
// (the NIC-side serialization), the counterpart probe to DownlinkBusy:
// an incast is fabric-bound when the victim's downlink busy fraction
// exceeds its NIC ingress busy fraction.
func (f *Fabric) IngressBusy(node int) simtime.Time {
	if p := f.port(node); p != nil {
		return p.ingress.BusyTotal()
	}
	return 0
}

// Ports returns the number of registered ports.
func (f *Fabric) Ports() int { return f.nports }
