// Package fabric simulates a single-switch network fabric (the paper's
// 40 Gbps Mellanox InfiniBand switch) connecting a cluster of nodes.
//
// The fabric is a pure timing facility: it owns the per-node egress and
// ingress link occupancies and computes, for a message of a given size
// posted at a given instant, when its last byte is available at the
// destination port. The NIC layers (rnic, tcpip) decide what happens at
// delivery. Links are cut-through: a message's serialization delay is
// paid once, while both the egress and ingress links are occupied for
// the serialization duration (so incast and outcast contention both
// queue correctly).
package fabric

import (
	"fmt"

	"lite/internal/obs"
	"lite/internal/params"
	"lite/internal/simtime"
)

// Fabric is a single-switch network connecting numbered ports.
type Fabric struct {
	cfg   *params.Config
	ports map[int]*port
	// down records unreachable directed pairs for failure injection.
	down map[[2]int]bool
	// nodeDown records whole nodes cut from the fabric (both
	// directions of every pair), as when a machine loses power.
	nodeDown map[int]bool
	// nodeDelay is extra one-way latency added to any message that
	// touches the node, modeling a degraded ("slow") machine.
	nodeDelay map[int]simtime.Time
	// dropHook, when set, is consulted for every otherwise-reachable
	// message; returning true silently drops it. Used for
	// probabilistic loss injection.
	dropHook func(at simtime.Time, src, dst int, size int64) bool
	// reg, when non-nil, receives fabric counters ("fabric.msgs",
	// "fabric.bytes", "fabric.dropped") and queueing histograms.
	reg *obs.Registry
}

type port struct {
	egress  simtime.Server
	ingress simtime.Server
}

// New returns a fabric using the given cost model.
func New(cfg *params.Config) *Fabric {
	return &Fabric{
		cfg:       cfg,
		ports:     make(map[int]*port),
		down:      make(map[[2]int]bool),
		nodeDown:  make(map[int]bool),
		nodeDelay: make(map[int]simtime.Time),
	}
}

// AddPort registers a node's port. Adding an existing port is an error.
func (f *Fabric) AddPort(node int) error {
	if _, ok := f.ports[node]; ok {
		return fmt.Errorf("fabric: port %d already exists", node)
	}
	f.ports[node] = &port{}
	return nil
}

// SetLinkDown makes messages from src to dst undeliverable (in that
// direction only) until SetLinkUp. Used for failure injection.
func (f *Fabric) SetLinkDown(src, dst int) { f.down[[2]int{src, dst}] = true }

// SetLinkUp restores delivery from src to dst.
func (f *Fabric) SetLinkUp(src, dst int) { delete(f.down, [2]int{src, dst}) }

// SetNodeDown cuts a node from the fabric entirely: no message to or
// from it is deliverable until SetNodeUp. This models a machine crash
// (or its top-of-rack port being disabled) without having to
// enumerate directed pairs.
func (f *Fabric) SetNodeDown(node int) { f.nodeDown[node] = true }

// SetNodeUp restores a node cut by SetNodeDown. Directed link cuts
// installed with SetLinkDown are unaffected.
func (f *Fabric) SetNodeUp(node int) { delete(f.nodeDown, node) }

// NodeDown reports whether node is currently cut from the fabric.
func (f *Fabric) NodeDown(node int) bool { return f.nodeDown[node] }

// Partition symmetrically severs every pair crossing the (a, b) cut:
// for each x in a and y in b, both x→y and y→x become undeliverable.
// Nodes appearing in neither group keep full connectivity.
func (f *Fabric) Partition(a, b []int) {
	for _, x := range a {
		for _, y := range b {
			f.SetLinkDown(x, y)
			f.SetLinkDown(y, x)
		}
	}
}

// HealPartition undoes Partition for the same two groups.
func (f *Fabric) HealPartition(a, b []int) {
	for _, x := range a {
		for _, y := range b {
			f.SetLinkUp(x, y)
			f.SetLinkUp(y, x)
		}
	}
}

// SetNodeDelay injects extra one-way latency on every message sent to
// or from node (a "slow node"). A zero duration removes the injection.
func (f *Fabric) SetNodeDelay(node int, d simtime.Time) {
	if d <= 0 {
		delete(f.nodeDelay, node)
		return
	}
	f.nodeDelay[node] = d
}

// SetDropHook installs a predicate consulted for every reachable
// message; returning true drops the message as if the path were down.
// Pass nil to remove. Fault injectors use it for seeded probabilistic
// loss.
func (f *Fabric) SetDropHook(h func(at simtime.Time, src, dst int, size int64) bool) {
	f.dropHook = h
}

// SetObs directs the fabric's metrics into the given registry
// (typically a cluster domain's global registry, since the fabric is
// shared). A nil registry disables collection.
func (f *Fabric) SetObs(reg *obs.Registry) { f.reg = reg }

// Reachable reports whether src can currently reach dst.
func (f *Fabric) Reachable(src, dst int) bool {
	if _, ok := f.ports[src]; !ok {
		return false
	}
	if _, ok := f.ports[dst]; !ok {
		return false
	}
	if f.nodeDown[src] || f.nodeDown[dst] {
		return false
	}
	return !f.down[[2]int{src, dst}]
}

// ReservePath books transmission of size bytes from src to dst with
// the message ready to transmit at time at, and returns the instant the
// last byte has arrived at dst's port. It returns ok=false if the path
// is unreachable, in which case the message must be considered lost.
//
// Loopback (src == dst) bypasses the wire entirely and costs only the
// switch-free local turnaround (zero; NIC pipelines still apply).
func (f *Fabric) ReservePath(at simtime.Time, src, dst int, size int64) (simtime.Time, bool) {
	if !f.Reachable(src, dst) {
		return 0, false
	}
	if src == dst {
		// Loopback never touches the wire, so probabilistic loss does
		// not apply to it.
		return at, true
	}
	if f.dropHook != nil && f.dropHook(at, src, dst, size) {
		f.reg.Add("fabric.dropped", 1)
		return 0, false
	}
	sp := f.ports[src]
	dp := f.ports[dst]
	ser := params.TransferTime(size, f.cfg.LinkBandwidth)
	egressDone := sp.egress.Reserve(at, ser)
	// Cut-through: the head of the message reaches the destination
	// propagation+switch after it starts leaving the source; the
	// ingress link is then occupied for one serialization time.
	headArrive := egressDone - ser + f.cfg.PropagationDelay + f.cfg.SwitchDelay
	headArrive += f.nodeDelay[src] + f.nodeDelay[dst]
	done := dp.ingress.Reserve(headArrive, ser)
	if f.reg != nil {
		f.reg.Add("fabric.msgs", 1)
		f.reg.Add("fabric.bytes", size)
		// Queue wait: time spent waiting behind earlier messages for
		// the egress link, beyond the message's own serialization.
		f.reg.Observe("fabric.queue_wait", egressDone-ser-at)
		f.reg.Observe("fabric.serialize", ser)
	}
	return done, true
}

// EgressBusy returns the total busy time of a node's egress link, for
// utilization reporting.
func (f *Fabric) EgressBusy(node int) simtime.Time {
	if p, ok := f.ports[node]; ok {
		return p.egress.BusyTotal()
	}
	return 0
}

// Ports returns the number of registered ports.
func (f *Fabric) Ports() int { return len(f.ports) }
