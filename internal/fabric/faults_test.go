package fabric

import (
	"testing"
	"time"

	"lite/internal/obs"
	"lite/internal/simtime"
)

func TestSetNodeDownCutsAllDirections(t *testing.T) {
	f, _ := newFab(t)
	f.SetNodeDown(2)
	for _, pair := range [][2]int{{2, 0}, {0, 2}, {2, 3}, {3, 2}} {
		if f.Reachable(pair[0], pair[1]) {
			t.Fatalf("node 2 down but %v reachable", pair)
		}
		if _, ok := f.ReservePath(0, pair[0], pair[1], 64); ok {
			t.Fatalf("delivery over downed node %v", pair)
		}
	}
	if !f.Reachable(0, 1) || !f.Reachable(3, 0) {
		t.Fatal("unrelated links affected by SetNodeDown")
	}
	f.SetNodeUp(2)
	if !f.Reachable(0, 2) || !f.Reachable(2, 3) {
		t.Fatal("SetNodeUp did not restore reachability")
	}
}

func TestPartitionIsSymmetric(t *testing.T) {
	f, _ := newFab(t)
	f.Partition([]int{0, 1}, []int{2, 3})
	for _, a := range []int{0, 1} {
		for _, b := range []int{2, 3} {
			if f.Reachable(a, b) || f.Reachable(b, a) {
				t.Fatalf("cross pair %d<->%d still reachable", a, b)
			}
		}
	}
	if !f.Reachable(0, 1) || !f.Reachable(2, 3) {
		t.Fatal("intra-side links cut by Partition")
	}
	f.HealPartition([]int{0, 1}, []int{2, 3})
	if !f.Reachable(0, 3) || !f.Reachable(3, 0) {
		t.Fatal("HealPartition did not restore the cross links")
	}
}

func TestNodeDownComposesWithPartition(t *testing.T) {
	// A node marked down stays down even if a partition containing it
	// is healed: the two mechanisms are independent.
	f, _ := newFab(t)
	f.SetNodeDown(1)
	f.Partition([]int{0, 1}, []int{2, 3})
	f.HealPartition([]int{0, 1}, []int{2, 3})
	if f.Reachable(0, 1) {
		t.Fatal("healing a partition revived a downed node")
	}
	f.SetNodeUp(1)
	if !f.Reachable(0, 1) {
		t.Fatal("node never came back")
	}
}

func TestDropHookLossAndCounting(t *testing.T) {
	f, _ := newFab(t)
	reg := obs.NewRegistry(-1)
	f.SetObs(reg)
	drop := false
	f.SetDropHook(func(at simtime.Time, src, dst int, size int64) bool { return drop })
	if _, ok := f.ReservePath(0, 0, 1, 64); !ok {
		t.Fatal("hook returning false dropped a message")
	}
	drop = true
	if _, ok := f.ReservePath(0, 0, 1, 64); ok {
		t.Fatal("hook returning true delivered a message")
	}
	// Loopback bypasses the wire: loss must never apply to it.
	if _, ok := f.ReservePath(0, 1, 1, 64); !ok {
		t.Fatal("loopback message dropped by loss hook")
	}
	if got := reg.Counter("fabric.dropped").Value(); got != 1 {
		t.Fatalf("fabric.dropped = %d, want 1", got)
	}
}

func TestNodeDelaySlowsBothEndpoints(t *testing.T) {
	f, cfg := newFab(t)
	base, ok := f.ReservePath(0, 0, 1, 4096)
	if !ok {
		t.Fatal("unreachable")
	}
	d := 3 * time.Microsecond
	f.SetNodeDelay(1, d)
	slowRecv, _ := f.ReservePath(base, 0, 1, 4096)
	if want := base + (base - 0) + d; slowRecv != want {
		// Second reservation starts where the first ended; the
		// injected delay shifts head arrival by exactly d.
		t.Fatalf("delayed arrival = %v, want %v", slowRecv, want)
	}
	f.SetNodeDelay(1, 0)
	_ = cfg
}
