package fabric

import (
	"testing"
	"time"

	"lite/internal/params"
)

// newClos builds a two-tier fabric: leaves of 4 hosts, 2 spines, with
// nodes 0..11 registered (three leaves).
func newClos(t *testing.T) (*Fabric, *params.Config) {
	t.Helper()
	cfg := params.Default()
	cfg.ClosLeafNodes = 4
	cfg.ClosSpines = 2
	f := New(&cfg)
	for i := 0; i < 12; i++ {
		if err := f.AddPort(i); err != nil {
			t.Fatal(err)
		}
	}
	return f, &cfg
}

func TestLeafAssignment(t *testing.T) {
	f, _ := newClos(t)
	for node, wantLeaf := range map[int]int{0: 0, 3: 0, 4: 1, 7: 1, 8: 2, 11: 2} {
		if got := f.LeafOf(node); got != wantLeaf {
			t.Fatalf("LeafOf(%d) = %d, want %d", node, got, wantLeaf)
		}
	}
	single := New(&params.Config{})
	if single.LeafOf(9) != 0 {
		t.Fatal("single-switch LeafOf must be 0")
	}
}

// TestECMPDeterminism pins the ECMP contract: the spine choice is a
// pure function of (src, dst, seed) — identical across calls and
// across fabric instances — and changing the seed still yields a valid
// deterministic choice.
func TestECMPDeterminism(t *testing.T) {
	f1, _ := newClos(t)
	f2, _ := newClos(t)
	spread := map[int]bool{}
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 12; dst++ {
			s1 := f1.SpineFor(src, dst)
			if s1 < 0 || s1 >= 2 {
				t.Fatalf("SpineFor(%d,%d) = %d, out of range", src, dst, s1)
			}
			if s2 := f2.SpineFor(src, dst); s2 != s1 {
				t.Fatalf("SpineFor(%d,%d) differs across instances: %d vs %d", src, dst, s1, s2)
			}
			if again := f1.SpineFor(src, dst); again != s1 {
				t.Fatalf("SpineFor(%d,%d) not stable: %d then %d", src, dst, s1, again)
			}
			spread[s1] = true
		}
	}
	if len(spread) != 2 {
		t.Fatalf("ECMP hashed every flow onto the same spine: %v", spread)
	}
	// Same-leaf, loopback, and single-switch flows never cross a spine.
	if f1.SpineFor(0, 3) != -1 || f1.SpineFor(5, 5) != -1 {
		t.Fatal("same-leaf or loopback flow crossed the spine layer")
	}
	single := New(&params.Config{})
	if single.SpineFor(0, 9) != -1 {
		t.Fatal("single-switch flow crossed the spine layer")
	}
}

func TestECMPSeedChangesPaths(t *testing.T) {
	f, _ := newClos(t)
	base := map[[2]int]int{}
	for src := 0; src < 4; src++ {
		for dst := 4; dst < 12; dst++ {
			base[[2]int{src, dst}] = f.SpineFor(src, dst)
		}
	}
	changed := false
	f.SetECMPSeed(0x9e3779b97f4a7c15)
	for k, want := range base {
		got := f.SpineFor(k[0], k[1])
		if got < 0 || got >= 2 {
			t.Fatalf("seeded SpineFor(%v) = %d, out of range", k, got)
		}
		if got != want {
			changed = true
		}
	}
	if !changed {
		t.Fatal("reseeding ECMP left every flow on the same spine")
	}
}

// TestClosCrossLeafCost checks the two-tier path formula: a cross-leaf
// message pays three switch hops and serializes onto the uplink and
// downlink at the (slower) uplink bandwidth.
func TestClosCrossLeafCost(t *testing.T) {
	f, cfg := newClos(t)
	size := int64(64 << 10)
	ser := params.TransferTime(size, cfg.LinkBandwidth)
	serUp := params.TransferTime(size, f.uplinkBW)
	done, ok := f.ReservePath(0, 0, 8, size)
	if !ok {
		t.Fatal("unreachable")
	}
	hop := cfg.PropagationDelay + cfg.SwitchDelay
	// Walk the cut-through formula hop by hop: egress serialization,
	// then uplink and downlink serialization at uplink bandwidth, one
	// propagation+switch delay per hop, ingress tail at link rate.
	egressDone := ser
	head := egressDone - ser + hop
	upDone := head + serUp
	head2 := upDone - serUp + hop
	dnDone := head2 + serUp
	head3 := dnDone - serUp + hop
	expect := head3 + ser
	if done != expect {
		t.Fatalf("cross-leaf done = %v, want %v", done, expect)
	}
	// Same-leaf traffic pays the single-switch cost.
	sameDone, ok := f.ReservePath(0, 4, 5, size)
	if !ok {
		t.Fatal("unreachable")
	}
	if sameWant := ser + hop; sameDone != sameWant {
		t.Fatalf("same-leaf done = %v, want %v", sameDone, sameWant)
	}
}

// TestClosUplinkContention checks that two flows hashed onto the same
// uplink serialize behind each other while the oversubscription
// counter moves.
func TestClosUplinkContention(t *testing.T) {
	f, _ := newClos(t)
	size := int64(1 << 20)
	serUp := params.TransferTime(size, f.uplinkBW)
	// Find two distinct sources on leaf 0 whose flows to leaf 2 share
	// a spine (with 4 sources and 2 spines there is always a pair).
	var flows [][2]int
	for src := 0; src < 4; src++ {
		flows = append(flows, [2]int{src, 8 + src%4})
	}
	bySpine := map[int][][2]int{}
	for _, fl := range flows {
		bySpine[f.SpineFor(fl[0], fl[1])] = append(bySpine[f.SpineFor(fl[0], fl[1])], fl)
	}
	var pair [][2]int
	for _, fls := range bySpine {
		if len(fls) >= 2 {
			pair = fls[:2]
			break
		}
	}
	if pair == nil {
		t.Fatal("no two flows shared a spine")
	}
	d1, ok1 := f.ReservePath(0, pair[0][0], pair[0][1], size)
	d2, ok2 := f.ReservePath(0, pair[1][0], pair[1][1], size)
	if !ok1 || !ok2 {
		t.Fatal("unreachable")
	}
	spine := f.SpineFor(pair[0][0], pair[0][1])
	if gap := d2 - d1; gap < serUp {
		t.Fatalf("second flow finished %v after first, want >= %v (uplink serialized)", gap, serUp)
	}
	if busy := f.UplinkBusy(0, spine); busy != 2*serUp {
		t.Fatalf("UplinkBusy = %v, want %v", busy, 2*serUp)
	}
	if f.UplinkBusy(7, 9) != 0 {
		t.Fatal("untouched uplink reports busy time")
	}
	if f.Ports() != 12 {
		t.Fatalf("Ports() = %d, want 12", f.Ports())
	}
}

// TestClosFaultsApply checks the failure-injection surface composes
// with Clos paths: node cuts and link cuts block cross-leaf flows too.
func TestClosFaultsApply(t *testing.T) {
	f, _ := newClos(t)
	if _, ok := f.ReservePath(0, 1, 9, 1024); !ok {
		t.Fatal("healthy path unreachable")
	}
	f.SetNodeDown(9)
	if _, ok := f.ReservePath(0, 1, 9, 1024); ok {
		t.Fatal("message reached a downed node")
	}
	f.SetNodeUp(9)
	f.SetLinkDown(1, 9)
	if _, ok := f.ReservePath(0, 1, 9, 1024); ok {
		t.Fatal("message crossed a cut link")
	}
	if _, ok := f.ReservePath(0, 9, 1, 1024); !ok {
		t.Fatal("reverse direction should be unaffected by a one-way cut")
	}
	f.SetLinkUp(1, 9)
	if _, ok := f.ReservePath(0, 1, 9, 1024); !ok {
		t.Fatal("path still down after repair")
	}
	f.SetNodeDelay(9, 3*time.Microsecond)
	d2, ok := f.ReservePath(time.Millisecond, 2, 9, 1024)
	if !ok {
		t.Fatal("delayed node unreachable")
	}
	// Compare against the same flow's healthy cost rather than a sibling
	// node: leaf/spine geometry differs per destination.
	f.SetNodeDelay(9, 0)
	d3, ok := f.ReservePath(time.Millisecond, 2, 9, 1024)
	if !ok {
		t.Fatal("unreachable after clearing delay")
	}
	if d2 <= d3 {
		t.Fatalf("slow-node delay had no effect: %v vs %v", d2, d3)
	}
}
