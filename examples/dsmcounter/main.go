// dsmcounter: shared state on LITE-DSM (§8.4). Four nodes increment
// per-node slots of a shared array with plain reads and writes under
// release consistency, synchronize with LT_barrier, and then every
// node verifies every other node's slots — exercising page faults,
// write-back, and invalidation multicasts.
package main

import (
	"encoding/binary"
	"fmt"
	"log"

	"lite/internal/apps/dsm"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

func main() {
	cfg := params.Default()
	cls, err := cluster.New(&cfg, 4, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	nodes := []int{0, 1, 2, 3}
	const rounds = 5
	const slot = 4096 // page-aligned per-node slot (MRSW discipline)

	var sys *dsm.System
	booted := false
	var cond simtime.Cond
	for idx, node := range nodes {
		idx, node := idx, node
		cls.GoOn(node, "counter", func(p *simtime.Proc) {
			if idx == 0 {
				var err error
				sys, err = dsm.Boot(p, cls, dep, nodes, slot*int64(len(nodes)), dsm.DefaultConfig())
				if err != nil {
					log.Fatal(err)
				}
				booted = true
				cond.Broadcast(p.Env())
			} else {
				for !booted {
					cond.Wait(p)
				}
			}
			d := sys.Node(node)
			c := dep.Instance(node).KernelClient()
			var b [8]byte
			for r := 0; r < rounds; r++ {
				// Increment my counter in my slot.
				d.Acquire(p)
				if err := d.Read(p, int64(idx)*slot, b[:]); err != nil {
					log.Fatal(err)
				}
				binary.LittleEndian.PutUint64(b[:], binary.LittleEndian.Uint64(b[:])+1)
				if err := d.Write(p, int64(idx)*slot, b[:]); err != nil {
					log.Fatal(err)
				}
				if err := d.Release(p); err != nil {
					log.Fatal(err)
				}
				if err := c.Barrier(p, 9, len(nodes)); err != nil {
					log.Fatal(err)
				}
				// Read everyone's counter; all must equal r+1.
				for j := range nodes {
					if err := d.Read(p, int64(j)*slot, b[:]); err != nil {
						log.Fatal(err)
					}
					if got := binary.LittleEndian.Uint64(b[:]); got != uint64(r+1) {
						log.Fatalf("node %d sees counter[%d] = %d in round %d", node, j, got, r)
					}
				}
				if err := c.Barrier(p, 9, len(nodes)); err != nil {
					log.Fatal(err)
				}
			}
			if idx == 0 {
				fmt.Printf("[%8v] all %d nodes agreed on all counters for %d rounds\n",
					p.Now(), len(nodes), rounds)
				fmt.Printf("  node0 stats: %d faults, %d write-backs, %d invalidations applied\n",
					d.Faults, d.Writebacks, d.Invalidates)
			}
		})
	}
	if err := cls.Run(); err != nil {
		log.Fatal(err)
	}
}
