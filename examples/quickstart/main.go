// Quickstart: boot a three-node LITE cluster and exercise the core of
// Table 1 — LT_malloc / LT_map / LT_write / LT_read, LT_RPC, a
// distributed lock, and a barrier.
package main

import (
	"fmt"
	"log"

	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
)

const echoFn = lite.FirstUserFunc

func main() {
	cfg := params.Default()
	cls, err := cluster.New(&cfg, 3, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}

	// An RPC echo server on node 2.
	srv := dep.Instance(2)
	if err := srv.RegisterRPC(echoFn); err != nil {
		log.Fatal(err)
	}
	cls.GoDaemonOn(2, "echo-server", func(p *simtime.Proc) {
		c := srv.KernelClient()
		call, err := c.RecvRPC(p, echoFn)
		for err == nil {
			call, err = c.ReplyRecvRPC(p, call, append([]byte("echo: "), call.Input...), echoFn)
		}
	})

	ready := false
	var cond simtime.Cond

	// Node 0: create a named LMR and write into it.
	cls.GoOn(0, "producer", func(p *simtime.Proc) {
		c := dep.Instance(0).KernelClient()
		h, err := c.Malloc(p, 4096, "greeting", lite.PermRead|lite.PermWrite)
		if err != nil {
			log.Fatal(err)
		}
		if err := c.Write(p, h, 0, []byte("hello from node 0")); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node0: wrote greeting into LMR %q\n", p.Now(), "greeting")
		ready = true
		cond.Broadcast(p.Env())
		if err := c.Barrier(p, 1, 2); err != nil {
			log.Fatal(err)
		}
	})

	// Node 1: map the LMR by name, read it, call the RPC server, and
	// use a lock.
	cls.GoOn(1, "consumer", func(p *simtime.Proc) {
		for !ready {
			cond.Wait(p)
		}
		c := dep.Instance(1).KernelClient()
		h, err := c.Map(p, "greeting")
		if err != nil {
			log.Fatal(err)
		}
		buf := make([]byte, 17)
		start := p.Now()
		if err := c.Read(p, h, 0, buf); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node1: LT_read %q in %v\n", p.Now(), buf, p.Now()-start)

		start = p.Now()
		out, err := c.RPC(p, 2, echoFn, []byte("ping"), 64)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node1: LT_RPC reply %q in %v\n", p.Now(), out, p.Now()-start)

		lk, err := c.AllocLock(p, 0)
		if err != nil {
			log.Fatal(err)
		}
		start = p.Now()
		if err := c.LockAcquire(p, lk); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node1: acquired distributed lock in %v\n", p.Now(), p.Now()-start)
		if err := c.LockRelease(p, lk); err != nil {
			log.Fatal(err)
		}
		if err := c.Barrier(p, 1, 2); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] node1: passed the 2-party barrier\n", p.Now())
	})

	if err := cls.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("done; simulated time %v\n", cls.Env.Now())
}
