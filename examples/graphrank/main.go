// graphrank: PageRank on LITE-Graph (the paper's PowerGraph-design
// engine whose entire network layer is 20 lines of LITE calls, §8.3),
// compared against the PowerGraph-style TCP baseline on the same graph.
package main

import (
	"fmt"
	"log"
	"sort"

	"lite/internal/apps/graph"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/workload"
)

func main() {
	g := workload.NewPowerLawGraph(3, 20000, 300000)
	nodes := []int{0, 1, 2, 3}
	cfg := graph.DefaultConfig(nodes, 4, 10)

	pcfg := params.Default()
	cls, err := cluster.New(&pcfg, 4, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	liteRes, err := graph.RunLITE(cls, dep, cfg, g)
	if err != nil {
		log.Fatal(err)
	}

	pcfg2 := params.Default()
	cls2, err := cluster.New(&pcfg2, 4, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	pgRes, err := graph.RunMsgEngine(cls2, cfg, graph.PowerGraphParams(), g)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("graph: %d vertices, %d edges, %d iterations on %d nodes\n",
		g.NumVertices, len(g.Edges), cfg.Iterations, len(nodes))
	fmt.Printf("LITE-Graph:      %v\n", liteRes.Time)
	fmt.Printf("PowerGraph-sim:  %v (%.1fx slower)\n",
		pgRes.Time, float64(pgRes.Time)/float64(liteRes.Time))

	// Both engines agree on the ranks; print the hottest vertices.
	type vr struct {
		v int
		r float64
	}
	var all []vr
	for v, r := range liteRes.Ranks {
		if pr := pgRes.Ranks[v]; pr != r {
			log.Fatalf("engines disagree at vertex %d: %g vs %g", v, r, pr)
		}
		all = append(all, vr{v, r})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].r > all[j].r })
	fmt.Println("top-ranked vertices:")
	for _, e := range all[:5] {
		fmt.Printf("  v%-8d rank %.6f (out-degree %d)\n", e.v, e.r, g.OutDegree(e.v))
	}
}
