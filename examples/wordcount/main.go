// wordcount: run WordCount on LITE-MR (the paper's MapReduce port,
// §8.2) over a synthetic Zipf corpus and compare against the
// Hadoop-style baseline on the same input.
package main

import (
	"fmt"
	"log"
	"sort"

	"lite/internal/apps/mapreduce"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/workload"
)

func main() {
	input := workload.NewCorpus(7, 5000).Generate(4 << 20)
	workers := []int{1, 2, 3, 4}

	// LITE-MR.
	cfg := params.Default()
	cls, err := cluster.New(&cfg, 5, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	mrCfg := mapreduce.DefaultConfig(0, workers, 2, 8)
	res, err := mapreduce.RunLITE(cls, dep, mrCfg, input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LITE-MR:  map %v, reduce %v, merge %v, total %v\n",
		res.Map, res.Reduce, res.Merge, res.Total)

	// Hadoop-style baseline on a fresh cluster.
	hcfg := params.Default()
	hcls, err := cluster.New(&hcfg, 5, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	hres, err := mapreduce.RunHadoop(hcls, mapreduce.DefaultHadoopConfig(0, workers, 2, 8), input)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Hadoop:   map %v, reduce %v, merge %v, total %v\n",
		hres.Map, hres.Reduce, hres.Merge, hres.Total)
	fmt.Printf("speedup:  %.1fx\n\n", float64(hres.Total)/float64(res.Total))

	// Results agree; print the top words.
	type kv struct {
		w string
		c int64
	}
	var top []kv
	for w, c := range res.Counts {
		top = append(top, kv{w, c})
		if hres.Counts[w] != c {
			log.Fatalf("engines disagree on %q: %d vs %d", w, c, hres.Counts[w])
		}
	}
	sort.Slice(top, func(i, j int) bool { return top[i].c > top[j].c })
	fmt.Println("top words:")
	for _, e := range top[:5] {
		fmt.Printf("  %-12s %d\n", e.w, e.c)
	}
}
