// kvstore: a distributed key-value store on LITE in the style of the
// RDMA key-value systems the paper motivates (Pilaf, HERD, FaRM):
// values live in LITE memory and gets are one-sided LT_reads with no
// server CPU, while puts and index lookups go through LT_RPC.
//
// Under native RDMA this one-region-per-value design is exactly what
// §2.4 shows collapsing NIC SRAM; under LITE it is free.
package main

import (
	"fmt"
	"log"

	"lite/internal/apps/kvstore"
	"lite/internal/cluster"
	"lite/internal/lite"
	"lite/internal/params"
	"lite/internal/simtime"
	"lite/internal/workload"
)

func main() {
	cfg := params.Default()
	cls, err := cluster.New(&cfg, 4, 1<<30)
	if err != nil {
		log.Fatal(err)
	}
	dep, err := lite.Start(cls, lite.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	// Metadata servers on nodes 0 and 1; values hash-partition across them.
	store, err := kvstore.Start(cls, dep, []int{0, 1}, 2)
	if err != nil {
		log.Fatal(err)
	}

	kv := workload.NewFacebookKV(11)
	cls.GoOn(2, "client", func(p *simtime.Proc) {
		k := store.NewClient(2)

		// Put 50 values with Facebook-distribution sizes.
		keys := make([]string, 50)
		var totalBytes int64
		for i := range keys {
			keys[i] = fmt.Sprintf("user:%04d", i)
			sz := kv.ValueSize()
			if sz > 64<<10 {
				sz = 64 << 10
			}
			val := make([]byte, sz)
			for j := range val {
				val[j] = byte(i)
			}
			totalBytes += sz
			if err := k.Put(p, keys[i], val); err != nil {
				log.Fatal(err)
			}
		}
		fmt.Printf("[%8v] put %d values (%d KB total)\n", p.Now(), len(keys), totalBytes/1024)

		// First get pays the metadata RPC; repeats are one-sided reads.
		start := p.Now()
		v, err := k.Get(p, keys[7])
		if err != nil {
			log.Fatal(err)
		}
		cold := p.Now() - start
		start = p.Now()
		if _, err := k.Get(p, keys[7]); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("[%8v] get %q: %d bytes; cold (RPC+LT_map+read) %v, warm (LT_read only) %v\n",
			p.Now(), keys[7], len(v), cold, p.Now()-start)

		// Verify everything through the one-sided path.
		for i, key := range keys {
			v, err := k.Get(p, key)
			if err != nil {
				log.Fatal(err)
			}
			for _, b := range v {
				if b != byte(i) {
					log.Fatalf("corrupt value for %s", key)
				}
			}
		}
		fmt.Printf("[%8v] verified %d values: %d one-sided gets, %d metadata lookups\n",
			p.Now(), len(keys), k.OneSidedGets, k.MetaLookups)
	})
	if err := cls.Run(); err != nil {
		log.Fatal(err)
	}
}
