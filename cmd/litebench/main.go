// Command litebench regenerates the tables and figures of the LITE
// paper's evaluation (Tsai & Zhang, SOSP'17) on the simulated
// substrate. Run with -list to enumerate experiments, with experiment
// ids to run a subset, or with -all for everything.
//
// Usage:
//
//	litebench -list
//	litebench fig4 fig6 fig10
//	litebench -all
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lite/internal/bench"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = nil
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: litebench [-list|-all] [experiment ids...]")
		os.Exit(2)
	}
	failed := false
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.Run(id)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(tab.Format())
		fmt.Printf("[%s took %v]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
	if failed {
		os.Exit(1)
	}
}
