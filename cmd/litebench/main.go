// Command litebench regenerates the tables and figures of the LITE
// paper's evaluation (Tsai & Zhang, SOSP'17) on the simulated
// substrate. Run with -list to enumerate experiments, with experiment
// ids to run a subset, or with -all for everything. -metrics appends
// each experiment's observability snapshot; -json additionally writes
// every table (and snapshot) as a machine-readable report.
//
// Usage:
//
//	litebench -list
//	litebench fig4 fig6 fig10
//	litebench -all
//	litebench -metrics -json BENCH_litebench.json trace breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lite/internal/bench"
	"lite/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	metrics := flag.Bool("metrics", false, "collect and print observability metrics per experiment")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file")
	comparePath := flag.String("compare", "", "re-run the experiments in this report and fail on virtual-time drift")
	flag.Parse()

	if *comparePath != "" {
		os.Exit(compareReport(*comparePath))
	}
	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = nil
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: litebench [-list|-all] [-metrics] [-json file] [experiment ids...]")
		os.Exit(2)
	}
	if *metrics {
		bench.SetObsEnabled(true)
	}
	var results []bench.JSONResult
	failed := false
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.Run(id)
		wall := time.Since(start)
		if *jsonPath != "" {
			results = append(results, bench.NewJSONResult(id, tab, wall, err))
		}
		if err != nil {
			// Experiments with self-gates return their table alongside
			// the error so the failing numbers are visible in context.
			if tab != nil {
				fmt.Print(tab.Format())
			}
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(tab.Format())
		if *metrics && tab.Metrics != nil {
			printMetrics(tab.Metrics)
		}
		// Virtual time is the measurement (how long the simulated
		// cluster ran); wall time is merely what the simulation cost.
		fmt.Printf("[%s simulated %v of virtual time in %v of wall time]\n\n",
			id, tab.Virtual, wall.Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// compareTolerance is the allowed relative drift between a committed
// virtual-time figure and a fresh run. The simulation is deterministic
// so matching runs agree exactly; the slack only keeps the guard from
// flagging a deliberate sub-percent calibration tweak as a regression.
const compareTolerance = 0.01

// compareEPSBand is the allowed relative deviation for the recorded
// events/sec figures, the only host-dependent numbers in the feed.
// The band is generous because the figure moves with the recording
// host, but a fresh run far below it means the simulator itself got
// slower.
const compareEPSBand = 0.25

// compareReport re-runs every experiment recorded in the committed
// report and compares the virtual durations — the bench guard that
// catches accidental performance regressions (or unrecorded
// improvements) in the simulated timeline. Returns a process exit
// code.
func compareReport(path string) int {
	rep, err := bench.ReadJSON(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench-guard: %v\n", err)
		return 1
	}
	code := 0
	for _, r := range rep.Results {
		if r.Error != "" {
			continue
		}
		tab, err := bench.Run(r.ID)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench-guard: %s: %v\n", r.ID, err)
			code = 1
			continue
		}
		got := int64(tab.Virtual)
		drift := float64(got-r.VirtualNs) / float64(r.VirtualNs)
		if drift < -compareTolerance || drift > compareTolerance {
			fmt.Fprintf(os.Stderr, "bench-guard: %s: virtual time drifted %+.2f%%: committed %dns, fresh run %dns (re-run 'make bench-smoke' if the change is intentional)\n",
				r.ID, drift*100, r.VirtualNs, got)
			code = 1
			continue
		}
		// The event count is exact by construction (same workload, same
		// deterministic scheduler), so any difference is a behavioral
		// change, not noise.
		if r.Events > 0 && tab.Events != r.Events {
			fmt.Fprintf(os.Stderr, "bench-guard: %s: event count changed: committed %d, fresh run %d (re-run 'make bench-smoke' if the change is intentional)\n",
				r.ID, r.Events, tab.Events)
			code = 1
			continue
		}
		// Events/sec is the one host-dependent figure in the feed:
		// compare within a band instead of exactly. Falling out the
		// bottom is a simulator performance regression and fails;
		// overshooting the top just means the committed figure is stale
		// (or the host fast), which is worth a note, not a failure.
		if r.EventsPerSec > 0 && tab.EventsPerSec > 0 {
			rel := tab.EventsPerSec / r.EventsPerSec
			if rel < 1-compareEPSBand {
				fmt.Fprintf(os.Stderr, "bench-guard: %s: events/sec regressed to %.0f, committed %.0f (%.0f%% of committed, floor is %.0f%%)\n",
					r.ID, tab.EventsPerSec, r.EventsPerSec, rel*100, (1-compareEPSBand)*100)
				code = 1
				continue
			}
			if rel > 1+compareEPSBand {
				fmt.Printf("bench-guard: %s: note: events/sec is %.0f, %.2fx the committed %.0f — consider refreshing the feed\n",
					r.ID, tab.EventsPerSec, rel, r.EventsPerSec)
			}
		}
		fmt.Printf("bench-guard: %-10s ok (%dns, %+.2f%%)\n", r.ID, got, drift*100)
	}
	return code
}

// printMetrics dumps a snapshot as '%'-prefixed lines, so tooling
// (and the Makefile's obs-guard) can strip them from table output.
func printMetrics(s *obs.Snapshot) {
	for _, name := range s.CounterNames() {
		fmt.Printf("%% counter %-28s %d\n", name, s.Counters[name])
	}
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		fmt.Printf("%% hist    %-28s n=%d mean=%v p50=%v p99=%v max=%v\n",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
}
