// Command litebench regenerates the tables and figures of the LITE
// paper's evaluation (Tsai & Zhang, SOSP'17) on the simulated
// substrate. Run with -list to enumerate experiments, with experiment
// ids to run a subset, or with -all for everything. -metrics appends
// each experiment's observability snapshot; -json additionally writes
// every table (and snapshot) as a machine-readable report.
//
// Usage:
//
//	litebench -list
//	litebench fig4 fig6 fig10
//	litebench -all
//	litebench -metrics -json BENCH_litebench.json trace breakdown
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"lite/internal/bench"
	"lite/internal/obs"
)

func main() {
	list := flag.Bool("list", false, "list available experiments")
	all := flag.Bool("all", false, "run every experiment")
	metrics := flag.Bool("metrics", false, "collect and print observability metrics per experiment")
	jsonPath := flag.String("json", "", "write a machine-readable report to this file")
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}
	ids := flag.Args()
	if *all {
		ids = nil
		for _, e := range bench.All() {
			ids = append(ids, e.ID)
		}
	}
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "usage: litebench [-list|-all] [-metrics] [-json file] [experiment ids...]")
		os.Exit(2)
	}
	if *metrics {
		bench.SetObsEnabled(true)
	}
	var results []bench.JSONResult
	failed := false
	for _, id := range ids {
		start := time.Now()
		tab, err := bench.Run(id)
		wall := time.Since(start)
		if *jsonPath != "" {
			results = append(results, bench.NewJSONResult(id, tab, wall, err))
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(tab.Format())
		if *metrics && tab.Metrics != nil {
			printMetrics(tab.Metrics)
		}
		// Virtual time is the measurement (how long the simulated
		// cluster ran); wall time is merely what the simulation cost.
		fmt.Printf("[%s simulated %v of virtual time in %v of wall time]\n\n",
			id, tab.Virtual, wall.Round(time.Millisecond))
	}
	if *jsonPath != "" {
		if err := bench.WriteJSON(*jsonPath, results); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", *jsonPath, err)
			failed = true
		}
	}
	if failed {
		os.Exit(1)
	}
}

// printMetrics dumps a snapshot as '%'-prefixed lines, so tooling
// (and the Makefile's obs-guard) can strip them from table output.
func printMetrics(s *obs.Snapshot) {
	for _, name := range s.CounterNames() {
		fmt.Printf("%% counter %-28s %d\n", name, s.Counters[name])
	}
	for _, name := range s.HistNames() {
		h := s.Hists[name]
		fmt.Printf("%% hist    %-28s n=%d mean=%v p50=%v p99=%v max=%v\n",
			name, h.Count(), h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.Max())
	}
}
