package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func readLines(path string) ([]string, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return strings.Split(string(data), "\n"), nil
}

// TestMapRangeFixtures runs the linter over the map-range fixture file
// and checks it fires on exactly the BAD-marked lines and nowhere
// else. The fixture marks each intended violation with a trailing
// "// BAD" on the range statement.
func TestMapRangeFixtures(t *testing.T) {
	path := filepath.Join("testdata", "maprange.go")
	findings, err := lintFile(path)
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{} // line of each `// BAD` range statement
	src, err := readLines(path)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range src {
		if strings.Contains(line, "// BAD") {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no BAD markers; the test is vacuous")
	}
	// Each finding sits inside the body of a BAD-marked loop: attribute
	// it to the nearest BAD line above it.
	got := map[int]int{}
	for _, f := range findings {
		marked := 0
		for line := range want {
			if line <= f.pos.Line && line > marked {
				marked = line
			}
		}
		if marked == 0 {
			t.Errorf("unexpected finding outside any BAD block: %s: %s", f.pos, f.msg)
			continue
		}
		got[marked]++
	}
	for line := range want {
		if got[line] != 1 {
			t.Errorf("BAD marker at line %d produced %d finding(s), want exactly 1", line, got[line])
		}
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s: %s", f.pos, f.msg)
		}
		t.Fatalf("%d findings for %d BAD markers", len(findings), len(want))
	}
}

// TestCrossFilePackageAnalysis proves the package-wide declaration
// resolution: b.go's ranges use a struct map field and package-level
// maps declared only in a.go, so linting b.go alone finds nothing,
// while linting the pair as a package fires on exactly the BAD-marked
// lines (and honours the local shadow of the global's name).
func TestCrossFilePackageAnalysis(t *testing.T) {
	a := filepath.Join("testdata", "xfile", "a.go")
	b := filepath.Join("testdata", "xfile", "b.go")

	alone, err := lintFile(b)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range alone {
		t.Errorf("single-file lint of b.go should be blind to a.go's declarations, got: %s: %s", f.pos, f.msg)
	}

	findings, err := lintFiles([]string{a, b})
	if err != nil {
		t.Fatal(err)
	}
	want := map[int]bool{}
	src, err := readLines(b)
	if err != nil {
		t.Fatal(err)
	}
	for i, line := range src {
		if strings.Contains(line, "// BAD") {
			want[i+1] = true
		}
	}
	if len(want) == 0 {
		t.Fatal("fixture has no BAD markers; the test is vacuous")
	}
	got := map[int]int{}
	for _, f := range findings {
		marked := 0
		for line := range want {
			if line <= f.pos.Line && line > marked {
				marked = line
			}
		}
		if marked == 0 {
			t.Errorf("unexpected finding outside any BAD block: %s: %s", f.pos, f.msg)
			continue
		}
		got[marked]++
	}
	for line := range want {
		if got[line] != 1 {
			t.Errorf("BAD marker at line %d produced %d finding(s), want exactly 1", line, got[line])
		}
	}
	if len(findings) != len(want) {
		for _, f := range findings {
			t.Logf("finding: %s: %s", f.pos, f.msg)
		}
		t.Fatalf("%d findings for %d BAD markers", len(findings), len(want))
	}
}

// TestCleanOnOwnSource keeps the linter self-hosting: its own source
// (and by extension every non-fixture file it ships with) must pass.
func TestCleanOnOwnSource(t *testing.T) {
	findings, err := lintFiles([]string{"main.go", "main_test.go"})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s: %s", f.pos, f.msg)
	}
}
