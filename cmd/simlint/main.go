// Command simlint enforces the repository's determinism discipline:
// simulation code must never consult the host clock or the global
// math/rand stream, because a single wall-clock read or unseeded
// random draw makes runs irreproducible and breaks the bench-guard's
// bit-for-bit comparisons. Virtual time comes from simtime, randomness
// from detrand.
//
// It walks the Go files under the given root (default "internal"),
// skipping _test.go files and testdata directories, and fails on:
//
//   - imports of math/rand or math/rand/v2
//   - calls through the time package to Now or Since (time.Duration
//     constants remain fine — they are values, not clock reads)
//
// Import renames are honoured: `import t "time"` followed by t.Now()
// is still flagged, and a local variable named "time" shadowing the
// package is not.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strconv"
	"strings"
)

// finding is one rule violation at a position.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var findings []finding
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		fs, errs := lintFile(path)
		findings = append(findings, fs...)
		return errs
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) under %s\n", len(findings), root)
		os.Exit(1)
	}
}

// bannedSelectors are the wall-clock reads a simulation must not make.
var bannedSelectors = map[string]string{
	"Now":   "use the Proc's virtual clock (p.Now()) instead of the host clock",
	"Since": "use virtual-time subtraction instead of the host clock",
}

func lintFile(path string) ([]finding, error) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, path, nil, 0)
	if err != nil {
		return nil, err
	}
	var findings []finding

	// timeNames collects the local names the "time" package is
	// imported under in this file ("time" itself, or a rename).
	timeNames := map[string]bool{}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch p {
		case "math/rand", "math/rand/v2":
			findings = append(findings, finding{
				pos: fset.Position(imp.Pos()),
				msg: fmt.Sprintf("import of %s: use lite/internal/detrand for seeded, replayable randomness", p),
			})
		case "time":
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				timeNames[name] = true
			}
		}
	}
	if len(timeNames) > 0 {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] {
				return true
			}
			// A non-nil Obj means the identifier resolves to a local
			// declaration shadowing the import, not the package.
			if id.Obj != nil {
				return true
			}
			if why, banned := bannedSelectors[sel.Sel.Name]; banned {
				findings = append(findings, finding{
					pos: fset.Position(sel.Pos()),
					msg: fmt.Sprintf("%s.%s: %s", id.Name, sel.Sel.Name, why),
				})
			}
			return true
		})
	}
	return findings, nil
}
