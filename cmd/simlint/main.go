// Command simlint enforces the repository's determinism discipline:
// simulation code must never consult the host clock or the global
// math/rand stream, because a single wall-clock read or unseeded
// random draw makes runs irreproducible and breaks the bench-guard's
// bit-for-bit comparisons. Virtual time comes from simtime, randomness
// from detrand.
//
// It walks the Go files under the given root (default "internal"),
// skipping _test.go files and testdata directories, and fails on:
//
//   - imports of math/rand or math/rand/v2
//   - calls through the time package to Now or Since (time.Duration
//     constants remain fine — they are values, not clock reads)
//   - ranging over a map while collecting into an outer slice or
//     writing to a builder/encoder: Go randomizes map iteration order,
//     so the collected order differs run to run. Collectors that are
//     later passed to a sort.* call in the same function are fine —
//     sorting launders the order — as is ranging purely for membership
//     or independent per-entry updates.
//   - under internal/lite only: ANY map iteration inside a
//     state-serialization function (one named encode*/serialize*/
//     marshal*). Serialized state crosses nodes — migration transfers,
//     membership broadcasts — where a randomized order does not just
//     perturb one run but desynchronizes the replicas comparing it, so
//     these paths must walk sorted key slices even when the loop body
//     looks order-safe today.
//
// A file may opt out of the wall-clock rule (only) with the directive
// comment
//
//	//simlint:allow-wallclock <justification>
//
// anywhere in the file. It exists for exactly one legitimate use:
// measurement harnesses that report the simulator's own wall-time
// speed (events per second), where the host clock is the measurement,
// not simulation input — wall-clock readings must never influence
// virtual-time behavior. math/rand stays banned regardless.
//
// Import renames are honoured: `import t "time"` followed by t.Now()
// is still flagged, and a local variable named "time" shadowing the
// package is not. The map-range rule infers map-typed expressions
// package-wide: files are linted in sibling groups (one group per
// directory), so struct map fields and package-level map variables
// declared in one file are recognized when a sibling file ranges over
// them. A local declaration shadowing a package-level map name is
// honoured and not flagged. Full type resolution is still out of
// scope, so the rule remains best-effort by design — it exists to
// catch the common leak, not to prove determinism.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// finding is one rule violation at a position.
type finding struct {
	pos token.Position
	msg string
}

func main() {
	root := "internal"
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	// Group files by directory so each package is linted as a unit:
	// the map-range rule resolves struct fields and package-level maps
	// across sibling files.
	groups := map[string][]string{}
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			if info.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		groups[dir] = append(groups[dir], path)
		return nil
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
		os.Exit(2)
	}
	dirs := make([]string, 0, len(groups))
	for dir := range groups {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	var findings []finding
	for _, dir := range dirs {
		fs, err := lintFiles(groups[dir])
		if err != nil {
			fmt.Fprintf(os.Stderr, "simlint: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, fs...)
	}
	for _, f := range findings {
		fmt.Printf("%s: %s\n", f.pos, f.msg)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "simlint: %d finding(s) under %s\n", len(findings), root)
		os.Exit(1)
	}
}

// bannedSelectors are the wall-clock reads a simulation must not make.
var bannedSelectors = map[string]string{
	"Now":   "use the Proc's virtual clock (p.Now()) instead of the host clock",
	"Since": "use virtual-time subtraction instead of the host clock",
}

// lintFile lints one file in isolation (no sibling context).
func lintFile(path string) ([]finding, error) {
	return lintFiles([]string{path})
}

// lintFiles lints one package's files together: map declarations
// (struct fields, package-level vars) are resolved across the whole
// group before any file's ranges are checked.
func lintFiles(paths []string) ([]finding, error) {
	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(paths))
	for _, path := range paths {
		file, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, file)
	}
	structFields, globals := pkgMapDecls(files)
	var findings []finding
	for i, file := range files {
		findings = append(findings, lintWallClock(fset, file)...)
		strictSerial := strings.Contains(filepath.ToSlash(paths[i]), "internal/lite/")
		findings = append(findings, lintMapRange(fset, file, strictSerial, structFields, globals)...)
	}
	return findings, nil
}

// allowWallclock reports whether the file carries the
// //simlint:allow-wallclock directive (see the package comment).
func allowWallclock(file *ast.File) bool {
	for _, cg := range file.Comments {
		for _, c := range cg.List {
			if strings.HasPrefix(c.Text, "//simlint:allow-wallclock") {
				return true
			}
		}
	}
	return false
}

// lintWallClock flags math/rand imports and host-clock reads through
// the time package in one file. The //simlint:allow-wallclock
// directive suppresses the clock-read rule (never the math/rand rule).
func lintWallClock(fset *token.FileSet, file *ast.File) []finding {
	var findings []finding
	wallclockOK := allowWallclock(file)

	// timeNames collects the local names the "time" package is
	// imported under in this file ("time" itself, or a rename).
	timeNames := map[string]bool{}
	for _, imp := range file.Imports {
		p, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch p {
		case "math/rand", "math/rand/v2":
			findings = append(findings, finding{
				pos: fset.Position(imp.Pos()),
				msg: fmt.Sprintf("import of %s: use lite/internal/detrand for seeded, replayable randomness", p),
			})
		case "time":
			name := "time"
			if imp.Name != nil {
				name = imp.Name.Name
			}
			if name != "_" && name != "." {
				timeNames[name] = true
			}
		}
	}
	if len(timeNames) > 0 && !wallclockOK {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] {
				return true
			}
			// A non-nil Obj means the identifier resolves to a local
			// declaration shadowing the import, not the package.
			if id.Obj != nil {
				return true
			}
			if why, banned := bannedSelectors[sel.Sel.Name]; banned {
				findings = append(findings, finding{
					pos: fset.Position(sel.Pos()),
					msg: fmt.Sprintf("%s.%s: %s", id.Name, sel.Sel.Name, why),
				})
			}
			return true
		})
	}
	return findings
}

// serializationFunc reports whether a function name marks a
// state-serialization path (the strict map-range rule applies there).
func serializationFunc(name string) bool {
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "encode") ||
		strings.HasPrefix(lower, "serialize") ||
		strings.HasPrefix(lower, "marshal")
}

// isMapValued reports whether an expression is statically known to
// produce a map: a map composite literal or make(map[...]...).
func isMapValued(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit:
		_, ok := v.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		if id, ok := v.Fun.(*ast.Ident); ok && id.Name == "make" && len(v.Args) > 0 {
			_, ok := v.Args[0].(*ast.MapType)
			return ok
		}
	}
	return false
}

// pkgMapDecls resolves map declarations across one package's files:
// struct fields of map type (keyed "StructName.field") and
// package-level variables of map type (bare names). A method or
// function in any file is then checked against declarations from every
// sibling.
func pkgMapDecls(files []*ast.File) (fields, globals map[string]bool) {
	fields = map[string]bool{}
	globals = map[string]bool{}
	for _, file := range files {
		for k := range mapFields(file) {
			fields[k] = true
		}
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				if _, isMap := vs.Type.(*ast.MapType); isMap {
					for _, name := range vs.Names {
						globals[name.Name] = true
					}
					continue
				}
				for i, name := range vs.Names {
					if i < len(vs.Values) && isMapValued(vs.Values[i]) {
						globals[name.Name] = true
					}
				}
			}
		}
	}
	return fields, globals
}

// mapFields collects the fields of map type declared by struct types in
// this file, keyed "StructName.field".
func mapFields(file *ast.File) map[string]bool {
	fields := map[string]bool{}
	ast.Inspect(file, func(n ast.Node) bool {
		ts, ok := n.(*ast.TypeSpec)
		if !ok {
			return true
		}
		st, ok := ts.Type.(*ast.StructType)
		if !ok {
			return true
		}
		for _, f := range st.Fields.List {
			if _, isMap := f.Type.(*ast.MapType); !isMap {
				continue
			}
			for _, name := range f.Names {
				fields[ts.Name.Name+"."+name.Name] = true
			}
		}
		return true
	})
	return fields
}

// recvType returns the bare name of a method's receiver type ("" for
// plain functions).
func recvType(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return ""
	}
	t := fn.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return ""
}

// mapExprs walks a function and records the names with map type visible
// from the file alone: parameters, var declarations, := from make or a
// map literal, plus "recv.field" selector paths for receiver fields
// declared as maps in this file.
type mapExprs struct {
	names  map[string]bool // plain identifiers of map type
	fields map[string]bool // "recvName.fieldName" selector paths
}

func collectMapExprs(fn *ast.FuncDecl, structFields map[string]bool) mapExprs {
	m := mapExprs{names: map[string]bool{}, fields: map[string]bool{}}
	addFieldList := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			if _, isMap := f.Type.(*ast.MapType); !isMap {
				continue
			}
			for _, name := range f.Names {
				m.names[name.Name] = true
			}
		}
	}
	addFieldList(fn.Type.Params)
	if rt := recvType(fn); rt != "" && fn.Recv.List[0].Names != nil {
		recv := fn.Recv.List[0].Names[0].Name
		for key := range structFields {
			if strings.HasPrefix(key, rt+".") {
				m.fields[recv+"."+strings.TrimPrefix(key, rt+".")] = true
			}
		}
	}
	ast.Inspect(fn, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.ValueSpec:
			if _, isMap := v.Type.(*ast.MapType); isMap {
				for _, name := range v.Names {
					m.names[name.Name] = true
				}
			}
		case *ast.AssignStmt:
			for i, lhs := range v.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || i >= len(v.Rhs) {
					continue
				}
				if isMapValued(v.Rhs[i]) {
					m.names[id.Name] = true
				}
			}
		}
		return true
	})
	return m
}

// exprPath renders an identifier or one-level selector ("m", "a.b") for
// lookup against the collected map expressions; "" if neither.
func exprPath(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		if id, ok := v.X.(*ast.Ident); ok {
			return id.Name + "." + v.Sel.Name
		}
	}
	return ""
}

// declaredWithin reports whether an identifier resolves to a
// declaration positioned inside the given block.
func declaredWithin(id *ast.Ident, block *ast.BlockStmt) bool {
	if id.Obj == nil {
		return false
	}
	decl, ok := id.Obj.Decl.(ast.Node)
	if !ok {
		return false
	}
	return decl.Pos() >= block.Pos() && decl.End() <= block.End()
}

// orderSinks are method/package calls that serialize whatever order the
// loop visits: writing inside a map range bakes the random order into
// the output.
var orderSinks = map[string]bool{
	"WriteString": true, "WriteByte": true, "WriteRune": true,
	"Encode": true, "Fprintf": true, "Fprintln": true, "Fprint": true,
}

// lintMapRange flags map iterations whose visit order escapes: an
// append into a collector declared outside the loop (unless the same
// function later sorts that collector), or a direct write to a
// builder/encoder sink from inside the loop body. structFields and
// globals carry the package-wide map declarations from pkgMapDecls.
func lintMapRange(fset *token.FileSet, file *ast.File, strictSerial bool, structFields, globals map[string]bool) []finding {
	var findings []finding
	for _, decl := range file.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil {
			continue
		}
		exprs := collectMapExprs(fn, structFields)
		// rangesMap reports whether a range subject is a known map: a
		// local/param/receiver-field map, or a package-level map from any
		// sibling file — unless a declaration inside this function
		// shadows the package-level name.
		rangesMap := func(x ast.Expr) (string, bool) {
			path := exprPath(x)
			if path == "" {
				return "", false
			}
			if exprs.names[path] || exprs.fields[path] {
				return path, true
			}
			if !globals[path] {
				return path, false
			}
			id, ok := x.(*ast.Ident)
			if !ok {
				return path, false
			}
			if id.Obj != nil {
				if d, ok := id.Obj.Decl.(ast.Node); ok && d.Pos() >= fn.Pos() && d.End() <= fn.End() {
					return path, false // shadowed by a local declaration
				}
			}
			return path, true
		}
		if strictSerial && serializationFunc(fn.Name.Name) {
			ast.Inspect(fn, func(n ast.Node) bool {
				rng, ok := n.(*ast.RangeStmt)
				if !ok {
					return true
				}
				path, isMap := rangesMap(rng.X)
				if !isMap {
					return true
				}
				findings = append(findings, finding{
					pos: fset.Position(rng.Pos()),
					msg: fmt.Sprintf("range over map %q in serialization function %q: serialized state crosses nodes — walk a sorted key slice instead", path, fn.Name.Name),
				})
				return true
			})
			continue
		}

		// sortedVars are identifiers passed to any sort.* call anywhere
		// in this function: collect-then-sort launders map order.
		sortedVars := map[string]bool{}
		ast.Inspect(fn, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "sort" || pkg.Obj != nil {
				return true
			}
			for _, arg := range call.Args {
				if id, ok := arg.(*ast.Ident); ok {
					sortedVars[id.Name] = true
				}
			}
			return true
		})

		ast.Inspect(fn, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			path, isMap := rangesMap(rng.X)
			if !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(b ast.Node) bool {
				switch v := b.(type) {
				case *ast.AssignStmt:
					// v = append(v, ...) with plain `=`: the collector
					// lives outside the loop and inherits map order.
					if v.Tok != token.ASSIGN {
						return true
					}
					for i, rhs := range v.Rhs {
						call, ok := rhs.(*ast.CallExpr)
						if !ok {
							continue
						}
						if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" || id.Obj != nil {
							continue
						}
						dst, ok := v.Lhs[i].(*ast.Ident)
						if !ok || sortedVars[dst.Name] {
							continue
						}
						// A collector declared inside the loop body dies
						// every iteration; only outer collectors can
						// accumulate cross-iteration order.
						if declaredWithin(dst, rng.Body) {
							continue
						}
						findings = append(findings, finding{
							pos: fset.Position(v.Pos()),
							msg: fmt.Sprintf("append to %q inside range over map %q: iteration order is randomized — sort %[1]q afterwards or range over a sorted key slice", dst.Name, path),
						})
					}
				case *ast.CallExpr:
					sel, ok := v.Fun.(*ast.SelectorExpr)
					if !ok || !orderSinks[sel.Sel.Name] {
						return true
					}
					findings = append(findings, finding{
						pos: fset.Position(v.Pos()),
						msg: fmt.Sprintf("%s.%s inside range over map %q: iteration order is randomized — collect and sort keys first", exprPath(sel.X), sel.Sel.Name, path),
					})
				}
				return true
			})
			return true
		})
	}
	return findings
}
