// Package fixtures exercises the simlint map-range rule. Each BAD
// marker below must produce exactly one finding; everything else must
// stay clean. The file is parsed, never compiled.
package fixtures

import (
	"fmt"
	"sort"
	"strings"
)

type registry struct {
	counters map[string]int64
	name     string
}

// badAppendPlain: collecting map keys into an outer slice without
// sorting leaks iteration order.
func badAppendPlain(m map[string]int) []string {
	var keys []string
	for k := range m { // BAD
		keys = append(keys, k)
	}
	return keys
}

// badAppendReceiverField: the map comes from a receiver field declared
// in this file.
func (r *registry) badAppendReceiverField() []string {
	var names []string
	for name := range r.counters { // BAD
		names = append(names, name)
	}
	return names
}

// badAppendMakeLocal: map-typed locals introduced via make are tracked.
func badAppendMakeLocal() []int {
	m := make(map[int]bool)
	var out []int
	for k := range m { // BAD
		out = append(out, k)
	}
	return out
}

// badBuilderWrite: serializing entries straight out of the loop bakes
// the random order into the output.
func badBuilderWrite(m map[string]int) string {
	var b strings.Builder
	for k, v := range m { // BAD
		b.WriteString(fmt.Sprintf("%s=%d,", k, v))
	}
	return b.String()
}

// goodSortedAfter: collect-then-sort is the sanctioned pattern.
func goodSortedAfter(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodSortSlice: sort.Slice counts as laundering too.
func goodSortSlice(m map[int64]bool) []int64 {
	var pages []int64
	for p := range m {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(i, j int) bool { return pages[i] < pages[j] })
	return pages
}

// goodPerEntryUpdate: order-independent mutation inside the loop is
// fine — nothing observable depends on visit order.
func goodPerEntryUpdate(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// goodLocalAppendInLoop: a collector declared inside the loop dies
// each iteration and cannot accumulate cross-iteration order.
func goodLocalAppendInLoop(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		row := []int{}
		row = append(row, vs...)
		n += len(row)
	}
	return n
}

// goodSliceRange: ranging over a slice is ordered; the rule must not
// fire just because an append appears in a loop.
func goodSliceRange(xs []string) []string {
	var out []string
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}
