package xfile

import "sort"

// badSiblingField ranges over a receiver field whose map type is
// declared in a.go.
func (s *store) badSiblingField() []string {
	var keys []string
	for k := range s.entries { // BAD
		keys = append(keys, k)
	}
	return keys
}

// badGlobalRange ranges over a package-level map declared in a.go.
func badGlobalRange() []string {
	var keys []string
	for k := range globalIndex { // BAD
		keys = append(keys, k)
	}
	return keys
}

// badMadeGlobal: package-level maps introduced via make are tracked
// too.
func badMadeGlobal() []int {
	var out []int
	for k := range madeIndex { // BAD
		out = append(out, k)
	}
	return out
}

// goodSortedSibling: collect-then-sort stays sanctioned across files.
func goodSortedSibling(s *store) []string {
	keys := make([]string, 0, len(s.entries))
	for k := range s.entries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// goodShadowedGlobal: a local declaration shadowing the package-level
// map name is honoured — this ranges over a slice.
func goodShadowedGlobal(xs []string) []string {
	globalIndex := xs
	var out []string
	for _, k := range globalIndex {
		out = append(out, k)
	}
	return out
}
