// Package xfile exercises the cross-file map-range analysis: the map
// declarations live here, the ranges live in b.go. Linting b.go alone
// must find nothing; linting the pair as a package must fire on every
// BAD marker in b.go. The files are parsed, never compiled.
package xfile

// store's map field is only visible to b.go through package-wide
// declaration resolution.
type store struct {
	entries map[string]int
	label   string
}

// Package-level maps declared by type and by initializer.
var globalIndex map[string]int

var madeIndex = make(map[int]string)
