// Package repro's top-level benchmarks regenerate every table and
// figure of the paper's evaluation; each benchmark runs the
// corresponding experiment once per iteration and prints its table
// under -v. Run them all with:
//
//	go test -bench=. -benchtime=1x -benchmem
//
// The cmd/litebench binary produces the same tables with nicer output.
package main

import (
	"testing"

	"lite/internal/bench"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tab, err := bench.Run(id)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if i == 0 && testing.Verbose() {
			b.Log("\n" + tab.Format())
		}
	}
}

func BenchmarkFig4MRScalability(b *testing.B)      { runExperiment(b, "fig4") }
func BenchmarkFig5MRSizeScalability(b *testing.B)  { runExperiment(b, "fig5") }
func BenchmarkFig6WriteLatency(b *testing.B)       { runExperiment(b, "fig6") }
func BenchmarkFig7WriteThroughput(b *testing.B)    { runExperiment(b, "fig7") }
func BenchmarkFig8Registration(b *testing.B)       { runExperiment(b, "fig8") }
func BenchmarkFig10RPCLatency(b *testing.B)        { runExperiment(b, "fig10") }
func BenchmarkFig11RPCThroughput(b *testing.B)     { runExperiment(b, "fig11") }
func BenchmarkFig12MemoryUtilization(b *testing.B) { runExperiment(b, "fig12") }
func BenchmarkFig13CPUPerRequest(b *testing.B)     { runExperiment(b, "fig13") }
func BenchmarkFig14Scalability(b *testing.B)       { runExperiment(b, "fig14") }
func BenchmarkFig15QoSApplications(b *testing.B)   { runExperiment(b, "fig15") }
func BenchmarkFig16QoSTimeline(b *testing.B)       { runExperiment(b, "fig16") }
func BenchmarkFig17MemoryOps(b *testing.B)         { runExperiment(b, "fig17") }
func BenchmarkFig18MapReduce(b *testing.B)         { runExperiment(b, "fig18") }
func BenchmarkFig19PageRank(b *testing.B)          { runExperiment(b, "fig19") }
func BenchmarkTableCPUFixedRate(b *testing.B)      { runExperiment(b, "tab-cpu") }
func BenchmarkRPCLatencyBreakdown(b *testing.B)    { runExperiment(b, "breakdown") }
func BenchmarkTputFastPath(b *testing.B)           { runExperiment(b, "tput") }
func BenchmarkLogCommitThroughput(b *testing.B)    { runExperiment(b, "log-tput") }

func BenchmarkKVStoreThroughput(b *testing.B)  { runExperiment(b, "kv-tput") }
func BenchmarkDSMMicro(b *testing.B)           { runExperiment(b, "dsm-micro") }
func BenchmarkAblationQPs(b *testing.B)        { runExperiment(b, "abl-qp") }
func BenchmarkAblationPollWindow(b *testing.B) { runExperiment(b, "abl-window") }
func BenchmarkAblationChunkSize(b *testing.B)  { runExperiment(b, "abl-chunk") }
func BenchmarkAblationRingSize(b *testing.B)   { runExperiment(b, "abl-ring") }
